//! Fault-injection campaigns with SDC audits.
//!
//! A campaign compiles a kernel under a scheme, records the fault-free
//! result, then re-runs it many times with injected particle strikes
//! (register parity flips and datapath corruptions, per the paper's §5 fault
//! model) and compares the final architectural memory and return value
//! against the fault-free run. For resilient schemes every run must match —
//! the acoustic-sensor guarantee is *zero* silent data corruption.

use crate::driver::RunResult;
use crate::driver::{
    resume_compiled_replay, run_compiled_collecting_snapshots, run_compiled_replay,
    run_compiled_with_faults, RunError, RunSpec,
};
use crate::par::par_map;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use turnpike_compiler::compile;
use turnpike_ir::Program;
use turnpike_metrics::{RateEstimator, ThroughputMeter};
use turnpike_sensor::StrikeSampler;
use turnpike_sim::{Fault, FaultKind, FaultPlan, ReplayGuide, SimError, Translation};

/// Process-wide default for [`CampaignConfig::early_exit`]: on unless the
/// `TURNPIKE_EARLY_EXIT` environment variable is set to `0` (the CI golden
/// jobs use the kill switch to prove byte-identity against full replay).
fn early_exit_default() -> bool {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var_os("TURNPIKE_EARLY_EXIT").is_none_or(|v| v != "0"))
}

/// When a campaign stops injecting.
///
/// Sequential stopping decisions are made only at fixed chunk boundaries
/// (every [`STOP_CHUNK`] completed runs, in run-index order), never on a
/// per-thread whim — so the set of runs a stopped campaign executed is a
/// pure function of the config, and the report stays identical across
/// thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly [`CampaignConfig::runs`] injected runs.
    Fixed,
    /// Stop at the first chunk boundary where the 95% Wilson interval on
    /// the per-run SDC rate is no wider than `half_width` on each side of
    /// the point estimate, or after `cap` runs, whichever comes first.
    /// [`CampaignConfig::runs`] is ignored; the reported statistics are
    /// exact over the runs actually executed.
    CiWidth {
        /// Maximum acceptable half-width of the 95% Wilson interval.
        half_width: f64,
        /// Hard upper bound on injected runs.
        cap: usize,
    },
}

/// Runs between sequential-stop decisions (see [`StopRule`]). A constant —
/// deriving it from the thread count would make the stop point, and with
/// it the whole report, depend on parallelism.
pub const STOP_CHUNK: usize = 16;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injected runs.
    pub runs: usize,
    /// RNG seed (campaigns are deterministic given a seed).
    pub seed: u64,
    /// Strikes per run (the paper's model is single-event upsets; >1
    /// stresses repeated recovery).
    pub strikes_per_run: usize,
    /// Let strike runs stop at the first provable reconvergence with the
    /// golden run instead of simulating to completion (requires prefix
    /// snapshots, i.e. a `Some` snapshot interval on the spec). Reports,
    /// records, and metrics are bit-identical either way; only the
    /// [`ForkStats`] replay accounting observes the difference. Defaults to
    /// on; the `TURNPIKE_EARLY_EXIT=0` environment kill switch flips the
    /// default off process-wide.
    pub early_exit: bool,
    /// When to stop injecting. [`StopRule::Fixed`] (the default) keeps the
    /// historical behavior: exactly [`CampaignConfig::runs`] runs.
    pub stop: StopRule,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 20,
            seed: 0xF00D,
            strikes_per_run: 1,
            early_exit: early_exit_default(),
            stop: StopRule::Fixed,
        }
    }
}

/// Campaign outcome.
///
/// (`PartialEq` only: the embedded metrics registry carries `f64` gauges.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Runs executed.
    pub runs: usize,
    /// Runs whose final state differed from the fault-free run (SDC).
    pub sdc: usize,
    /// Total recoveries observed.
    pub recoveries: u64,
    /// Total detections observed.
    pub detections: u64,
    /// Detections via register parity / hardened access paths.
    pub parity_detections: u64,
    /// Detections via the acoustic sensor.
    pub sensor_detections: u64,
    /// Strikes that landed at or after program completion (no effect) —
    /// counted per strike, not per run, so multi-strike runs where only
    /// some strikes land in-run are attributed correctly.
    pub post_completion: usize,
    /// Runs aborted by the campaign watchdog: the corruption steered
    /// control flow into a non-terminating loop and nothing detected it
    /// (possible only when strikes land in unprotected regions — uniform
    /// resilient schemes detect and roll back every strike). A hang is
    /// detectable unresponsiveness, not silent corruption, so it is
    /// counted apart from [`CampaignReport::sdc`].
    pub hangs: usize,
    /// Every injected run's metrics folded together (`Sum` counters add,
    /// peaks take the campaign-wide max), plus the `campaign.*` counters.
    pub metrics: turnpike_metrics::MetricSet,
}

impl CampaignReport {
    /// Whether the scheme kept its zero-SDC guarantee.
    pub fn sdc_free(&self) -> bool {
        self.sdc == 0
    }

    /// Fold another shard's report into this one.
    ///
    /// Shards must be absorbed in ascending run-index order for the result
    /// to be bit-identical to the unsharded campaign: every scalar field
    /// adds, and the embedded [`MetricSet`](turnpike_metrics::MetricSet)
    /// merges under the same policies the unsharded fold uses (`Sum`
    /// counters add, `Max` counters take the high-water mark, histograms
    /// combine bucket-wise, gauges keep the last shard that set them —
    /// which in ascending order is exactly the last run that set them).
    /// The `campaign.*` counters each shard appended over its own totals
    /// sum to the whole campaign's totals, so no post-merge fixup is
    /// needed.
    pub fn absorb(&mut self, other: &CampaignReport) {
        self.runs += other.runs;
        self.sdc += other.sdc;
        self.recoveries += other.recoveries;
        self.detections += other.detections;
        self.parity_detections += other.parity_detections;
        self.sensor_detections += other.sensor_detections;
        self.post_completion += other.post_completion;
        self.hangs += other.hangs;
        self.metrics.merge(&other.metrics);
    }
}

/// How much prefix re-execution snapshot forking saved a campaign.
///
/// Kept out of [`CampaignReport`] on purpose: the report (metrics included)
/// is bit-identical whether runs fork from snapshots or simulate from
/// scratch, and folding fork accounting into it would break that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Injected runs forked from a fault-free prefix snapshot.
    pub hits: usize,
    /// Injected runs simulated from scratch (snapshots disabled, or the
    /// earliest strike landed before the first capture point).
    pub misses: usize,
    /// Fault-free prefix cycles skipped, summed over forked runs (each
    /// fork's snapshot cycle — execution the from-scratch path would redo).
    pub prefix_cycles_saved: u64,
    /// Strike runs that exited early by reconverging with the golden run
    /// ([`CampaignConfig::early_exit`]).
    pub replay_exits: usize,
    /// Post-convergence cycles skipped, summed over early-exited runs (the
    /// simulated suffix the full-replay path would have executed).
    pub replay_cycles_saved: u64,
}

impl ForkStats {
    /// The `campaign.fork_*`/`campaign.replay_*` counters as a standalone
    /// registry, for harness observability (merged into the bench registry,
    /// never into [`CampaignReport::metrics`]).
    pub fn to_metrics(&self) -> turnpike_metrics::MetricSet {
        use turnpike_metrics::Counter;
        let mut m = turnpike_metrics::MetricSet::new();
        m.add(Counter::CampaignForkHits, self.hits as u64);
        m.add(Counter::CampaignForkMisses, self.misses as u64);
        m.add(Counter::CampaignForkCyclesSaved, self.prefix_cycles_saved);
        m.add(Counter::CampaignReplayExits, self.replay_exits as u64);
        m.add(Counter::CampaignReplayCyclesSaved, self.replay_cycles_saved);
        m
    }
}

/// Outcome class of one injected strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrikeOutcome {
    /// The strike landed in-run, was detected, and the run's final state
    /// matched the fault-free run.
    Recovered,
    /// The strike landed at or past program completion: no architectural
    /// effect, nothing to detect.
    PostCompletion,
    /// The run's final state differed from the fault-free run (silent data
    /// corruption) — attributed to every strike of that run.
    Sdc,
    /// The run tripped the campaign watchdog (corrupted control flow never
    /// terminated, and no protection machinery caught it) — attributed to
    /// every strike of that run.
    Hang,
}

impl StrikeOutcome {
    /// Stable snake_case name used in the JSONL records.
    pub fn name(self) -> &'static str {
        match self {
            StrikeOutcome::Recovered => "recovered",
            StrikeOutcome::PostCompletion => "post_completion",
            StrikeOutcome::Sdc => "sdc",
            StrikeOutcome::Hang => "hang",
        }
    }
}

/// One structured record per injected strike, in deterministic
/// `(run, strike)` order. `recovery_cycles` and `detection_latency` are the
/// run's totals/observations attributed to the strike; for the default
/// single-strike campaigns they are exact per-strike values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrikeRecord {
    /// Campaign run index.
    pub run: usize,
    /// Strike index within the run (0 for single-strike campaigns).
    pub strike: usize,
    /// Cycle the particle hit.
    pub strike_cycle: u64,
    /// Sensor detection latency the plan assigned to the strike (cycles).
    pub detect_latency: u64,
    /// Cycles the run spent in recovery (flush + recovery blocks).
    pub recovery_cycles: u64,
    /// Detections the run observed (parity + sensor).
    pub detections: u64,
    /// Outcome class.
    pub outcome: StrikeOutcome,
}

impl StrikeRecord {
    /// Render the record as one stable JSONL line (no trailing newline).
    /// Key order is part of the schema: golden-file diffs rely on it.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"run\":{},\"strike\":{},\"strike_cycle\":{},\"detect_latency\":{},\
             \"recovery_cycles\":{},\"detections\":{},\"outcome\":\"{}\"}}",
            self.run,
            self.strike,
            self.strike_cycle,
            self.detect_latency,
            self.recovery_cycles,
            self.detections,
            self.outcome.name()
        )
    }
}

/// Stream strike records as JSONL, one record per line, in order.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_strike_records<W: std::io::Write>(
    records: &[StrikeRecord],
    w: &mut W,
) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_json())?;
    }
    Ok(())
}

/// Write strike records as a JSONL file at `path`, creating any missing
/// parent directories first — campaign output paths are routinely nested
/// (`results/<kernel>/<scheme>/strikes.jsonl`) and a missing directory
/// should not be an error.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_strike_records_to_path<P: AsRef<std::path::Path>>(
    records: &[StrikeRecord],
    path: P,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_strike_records(records, &mut w)?;
    std::io::Write::flush(&mut w)
}

/// Like [`write_strike_records`], but when `cap` is `Some(n)` the output is
/// bounded at `n` records drawn uniformly by a seeded reservoir sampler
/// ([`Reservoir`](turnpike_metrics::Reservoir)), so campaign JSONL stays
/// O(cap) at any campaign size. Capped output is prefixed with one header
/// line documenting the sampling:
///
/// ```json
/// {"header":"strike_records","sampling":"reservoir","total":1000000,"written":4096,"cap":4096,"seed":61453}
/// ```
///
/// Sampled records keep their original relative order. `cap: None` is
/// byte-identical to [`write_strike_records`] (no header line) — existing
/// consumers see no change.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_strike_records_capped<W: std::io::Write>(
    records: &[StrikeRecord],
    cap: Option<usize>,
    seed: u64,
    w: &mut W,
) -> std::io::Result<()> {
    let Some(cap) = cap else {
        return write_strike_records(records, w);
    };
    let mut reservoir = turnpike_metrics::Reservoir::new(cap, seed);
    for i in 0..records.len() {
        reservoir.offer(i);
    }
    let mut kept = reservoir.into_sample();
    kept.sort_unstable();
    writeln!(
        w,
        "{{\"header\":\"strike_records\",\"sampling\":\"reservoir\",\"total\":{},\
         \"written\":{},\"cap\":{},\"seed\":{}}}",
        records.len(),
        kept.len(),
        cap,
        seed
    )?;
    for i in kept {
        writeln!(w, "{}", records[i].to_json())?;
    }
    Ok(())
}

/// [`write_strike_records_capped`] to a file at `path`, creating missing
/// parent directories like [`write_strike_records_to_path`].
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_strike_records_capped_to_path<P: AsRef<std::path::Path>>(
    records: &[StrikeRecord],
    cap: Option<usize>,
    seed: u64,
    path: P,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_strike_records_capped(records, cap, seed, &mut w)?;
    std::io::Write::flush(&mut w)
}

/// Caller hooks into a running campaign: cooperative cancellation plus a
/// per-run progress callback. The default hook (`CampaignHook::default()`)
/// is inert, and every non-hooked entry point uses it.
///
/// Cancellation is checked once per injected run, so a campaign stops
/// within one simulation of the flag being raised. A canceled campaign
/// returns [`RunError::Canceled`] and discards partial results — reports
/// are all-or-nothing so the determinism contract ("same config, same
/// report") never observes a truncated fold.
#[derive(Default, Clone, Copy)]
pub struct CampaignHook<'a> {
    /// Raise to abandon the campaign at the next per-run check.
    pub cancel: Option<&'a AtomicBool>,
    /// Called after each injected run completes with
    /// `(runs_completed, runs_total)`. Runs execute on worker threads in
    /// any order, so `runs_completed` is a monotone count, not an index.
    pub on_run: Option<&'a (dyn Fn(usize, usize) + Sync)>,
    /// Called with a [`CampaignProgress`] snapshot every
    /// [`progress_every`](CampaignHook::progress_every) completed runs and
    /// on the campaign's final run. Calls are serialized (never
    /// concurrent) but may arrive from any worker thread. Snapshots are
    /// observational only: enabling them never changes the report.
    pub on_progress: Option<&'a (dyn Fn(&CampaignProgress) + Sync)>,
    /// Snapshot cadence in completed runs; `0` picks a default of one
    /// snapshot per ~5% of the campaign (min every run).
    pub progress_every: usize,
}

impl std::fmt::Debug for CampaignHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignHook")
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .field("on_run", &self.on_run.map(|_| "fn"))
            .field("on_progress", &self.on_progress.map(|_| "fn"))
            .field("progress_every", &self.progress_every)
            .finish()
    }
}

impl CampaignHook<'_> {
    fn canceled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// A point-in-time view of a running campaign, delivered through
/// [`CampaignHook::on_progress`].
///
/// Counts are exact over the `done` completed runs (the emitting run's
/// own outcome included); rates carry 95% Wilson confidence bounds via
/// [`RateEstimator`]. Throughput and ETA are windowed over recent
/// completions, so they track current pace, not the cold start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignProgress {
    /// Runs completed so far.
    pub done: usize,
    /// Target run count ([`CampaignConfig::runs`], or the stop rule's cap).
    pub total: usize,
    /// Completed runs that detected and recovered every in-run strike.
    pub recovered: usize,
    /// Completed runs whose strikes all landed at or past completion.
    pub post_completion: usize,
    /// Completed runs with silent data corruption.
    pub sdc: usize,
    /// Completed runs aborted by the campaign watchdog.
    pub hangs: usize,
    /// Total detections across completed runs.
    pub detections: u64,
    /// Per-run SDC rate over the completed runs, with Wilson bounds.
    pub sdc_rate: RateEstimator,
    /// Per-run detection rate (runs that recovered) with Wilson bounds.
    pub detection_rate: RateEstimator,
    /// Injected strikes per second, windowed.
    pub strikes_per_sec: f64,
    /// Host nanoseconds per simulated instruction, windowed.
    pub ns_per_inst: f64,
    /// Milliseconds since the first injected run started.
    pub elapsed_ms: u64,
    /// Estimated milliseconds to finish the remaining runs at the
    /// windowed pace; `0` when the pace is not yet known.
    pub eta_ms: u64,
}

/// Shared observer state behind [`CampaignHook::on_progress`]. Lives
/// entirely outside the report fold: workers bump outcome counts with
/// relaxed atomics *before* the release bump of the completion counter, so
/// when the last worker reports `done == total` every outcome has been
/// tallied and the final snapshot is exact. Intermediate snapshots derive
/// `done` from the outcome tallies themselves (a concurrent worker may
/// have tallied its outcome but not yet bumped the completion counter, so
/// the caller's `done` can lag the counts) — every snapshot's counts
/// partition its `done` exactly by construction.
struct ProgressShared<'a> {
    started: Instant,
    total: usize,
    strikes_per_run: usize,
    every: usize,
    recovered: AtomicUsize,
    post_completion: AtomicUsize,
    sdc: AtomicUsize,
    hangs: AtomicUsize,
    detections: AtomicU64,
    insts: AtomicU64,
    /// The throughput meter plus the highest `done` already delivered:
    /// workers race to the lock, so a staler snapshot can arrive after a
    /// fresher one — it is dropped, keeping deliveries monotone in `done`.
    meter: Mutex<(ThroughputMeter, usize)>,
    emit: &'a (dyn Fn(&CampaignProgress) + Sync),
}

impl<'a> ProgressShared<'a> {
    fn new(
        total: usize,
        strikes_per_run: usize,
        every: usize,
        emit: &'a (dyn Fn(&CampaignProgress) + Sync),
    ) -> Self {
        ProgressShared {
            started: Instant::now(),
            total,
            strikes_per_run,
            every: every.max(1),
            recovered: AtomicUsize::new(0),
            post_completion: AtomicUsize::new(0),
            sdc: AtomicUsize::new(0),
            hangs: AtomicUsize::new(0),
            detections: AtomicU64::new(0),
            insts: AtomicU64::new(0),
            meter: Mutex::new((ThroughputMeter::new(8), 0)),
            emit,
        }
    }

    /// Classify one completed run into the outcome tallies. Must run
    /// before the completion counter is bumped for that run.
    fn count_run(&self, run: Option<&RunResult>, golden: &RunResult) {
        match run {
            None => {
                self.hangs.fetch_add(1, Ordering::Relaxed);
            }
            Some(r) => {
                let sdc = r.outcome.replay_saved.is_none()
                    && (r.outcome.ret != golden.outcome.ret
                        || r.outcome.memory != golden.outcome.memory);
                let detections = r.outcome.stats.detections;
                if sdc {
                    self.sdc.fetch_add(1, Ordering::Relaxed);
                } else if detections > 0 {
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.post_completion.fetch_add(1, Ordering::Relaxed);
                }
                self.detections.fetch_add(detections, Ordering::Relaxed);
                self.insts.fetch_add(
                    r.metrics.counter(turnpike_metrics::Counter::Insts),
                    Ordering::Relaxed,
                );
            }
        }
    }

    /// Emit a snapshot if `done` is on the cadence (or final). Serialized
    /// under the meter lock so callbacks never observe interleaved state.
    fn maybe_emit(&self, done: usize) {
        if !done.is_multiple_of(self.every) && done != self.total {
            return;
        }
        let mut guard = self.meter.lock().expect("progress meter poisoned");
        let (meter, emitted) = &mut *guard;
        // The snapshot's `done` is the sum of the outcome tallies read
        // under the lock, not the caller's completion count: tallies land
        // before the completion bump, so the caller's `done` can trail
        // them, and summing the loads is the only way the reported counts
        // partition the reported `done` exactly. Tallies only grow, so
        // the `emitted` guard keeps deliveries strictly monotone even
        // when workers race to the lock out of order.
        let recovered = self.recovered.load(Ordering::Relaxed);
        let post_completion = self.post_completion.load(Ordering::Relaxed);
        let sdc = self.sdc.load(Ordering::Relaxed);
        let hangs = self.hangs.load(Ordering::Relaxed);
        let done = recovered + post_completion + sdc + hangs;
        if done <= *emitted {
            return;
        }
        *emitted = done;
        let elapsed = self.started.elapsed();
        let strikes_done = (done * self.strikes_per_run) as u64;
        meter.observe(
            elapsed.as_nanos() as u64,
            strikes_done,
            self.insts.load(Ordering::Relaxed),
        );
        let remaining = (self.total.saturating_sub(done) * self.strikes_per_run) as u64;
        let snapshot = CampaignProgress {
            done,
            total: self.total,
            recovered,
            post_completion,
            sdc,
            hangs,
            detections: self.detections.load(Ordering::Relaxed),
            sdc_rate: RateEstimator::from_counts(sdc as u64, done as u64),
            detection_rate: RateEstimator::from_counts(recovered as u64, done as u64),
            strikes_per_sec: meter.units_per_sec(),
            ns_per_inst: meter.ns_per_inst(),
            elapsed_ms: elapsed.as_millis() as u64,
            eta_ms: meter.eta_ns(remaining) / 1_000_000,
        };
        (self.emit)(&snapshot);
    }
}

/// SplitMix64-style mix of the campaign seed and a run index, giving every
/// run its own statistically independent RNG stream. Deriving streams from
/// `(seed, run_index)` — instead of threading one sequential RNG through
/// the whole campaign — is what makes runs order-independent, so they can
/// execute on any thread in any order with identical results.
fn run_seed(seed: u64, run_index: u64) -> u64 {
    let mut z = seed.wrapping_add(
        run_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fault plan of one campaign run, a pure function of the campaign
/// seed, the run index, and the fault-free horizon.
fn plan_for_run(
    config: &CampaignConfig,
    spec: &RunSpec,
    run_index: usize,
    horizon: u64,
) -> FaultPlan {
    let s = run_seed(config.seed, run_index as u64);
    let mut rng = StdRng::seed_from_u64(s);
    let mut sampler = StrikeSampler::new(s ^ 0x5eed, spec.wcdl);
    let mut faults = Vec::with_capacity(config.strikes_per_run);
    for _ in 0..config.strikes_per_run {
        let strike = sampler.sample(horizon);
        let kind = if rng.gen_bool(0.5) {
            FaultKind::RegisterParity {
                reg: rng.gen_range(0..32),
                bit: rng.gen_range(0..64),
            }
        } else {
            FaultKind::Datapath {
                bit: rng.gen_range(0..64),
            }
        };
        faults.push(Fault {
            strike_cycle: strike.cycle,
            detect_latency: strike.detect_latency,
            kind,
        });
    }
    FaultPlan::new(faults).with_watchdog(watchdog_for(horizon))
}

/// Watchdog cycle bound for injected runs: generous headroom over the
/// fault-free horizon (recoveries re-execute at most a region suffix per
/// strike, nowhere near 8x the whole run), so no legitimately terminating
/// run can ever trip it — only a corruption that spins forever does.
fn watchdog_for(horizon: u64) -> u64 {
    horizon.saturating_mul(8).saturating_add(65_536)
}

/// Run a fault-injection campaign serially (equivalent to
/// [`fault_campaign_par`] with one thread).
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted).
pub fn fault_campaign(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
) -> Result<CampaignReport, RunError> {
    fault_campaign_par(program, spec, config, 1)
}

/// Run a fault-injection campaign on up to `threads` worker threads.
///
/// The kernel is compiled once; each run derives its fault plan from
/// `(seed, run_index)` and simulates independently, so the report is
/// identical for every thread count.
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted).
pub fn fault_campaign_par(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
    threads: usize,
) -> Result<CampaignReport, RunError> {
    fault_campaign_records(program, spec, config, threads).map(|(report, _)| report)
}

/// Like [`fault_campaign_par`], additionally returning one [`StrikeRecord`]
/// per injected strike in deterministic `(run, strike)` order — the stream
/// behind the campaign JSONL output.
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted).
pub fn fault_campaign_records(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
    threads: usize,
) -> Result<(CampaignReport, Vec<StrikeRecord>), RunError> {
    fault_campaign_forked(program, spec, config, threads).map(|(report, recs, _)| (report, recs))
}

/// Like [`fault_campaign_records`], additionally returning the campaign's
/// [`ForkStats`].
///
/// When the spec's [`SimConfig::snapshot_interval`](turnpike_sim::SimConfig)
/// is set, the fault-free golden run captures prefix snapshots and every
/// strike run forks from the latest snapshot strictly before its earliest
/// strike instead of re-executing the fault-free prefix. Report and records
/// are bit-identical either way — the
/// [`CoreSnapshot`](turnpike_sim::CoreSnapshot) determinism contract
/// guarantees the resumed run reproduces the from-scratch one, stats
/// included.
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted).
pub fn fault_campaign_forked(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
    threads: usize,
) -> Result<(CampaignReport, Vec<StrikeRecord>, ForkStats), RunError> {
    fault_campaign_hooked(program, spec, config, threads, CampaignHook::default())
}

/// Like [`fault_campaign_forked`] with a caller-provided [`CampaignHook`]:
/// the long-lived serving layer uses this to cancel timed-out campaign jobs
/// and stream per-run progress back to clients. With the default hook this
/// is exactly [`fault_campaign_forked`] — hooks never change the report.
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted), and
/// returns [`RunError::Canceled`] if the hook's cancel flag is raised before
/// the last injected run completes.
pub fn fault_campaign_hooked(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
    threads: usize,
    hook: CampaignHook<'_>,
) -> Result<(CampaignReport, Vec<StrikeRecord>, ForkStats), RunError> {
    fault_campaign_shard_hooked(program, spec, config, threads, hook, 0)
}

/// Execute one *shard* of a campaign: the runs at global indices
/// `offset .. offset + config.runs`.
///
/// Each run's fault plan derives from `(config.seed, global run index)`
/// alone, so a shard computes exactly the runs the unsharded campaign
/// would at those indices — sharding is a partition of the run-index
/// space, not an approximation. Concatenating shard records in ascending
/// range order reproduces the unsharded record stream, and
/// [`CampaignReport::absorb`]ing shard reports in the same order
/// reproduces the unsharded report bit for bit. The distributed
/// coordinator in the bench harness is built on this contract.
///
/// `offset == 0` with `config.runs` covering the whole campaign is
/// exactly [`fault_campaign_hooked`]. Sequential stopping
/// ([`StopRule::CiWidth`]) is a whole-campaign decision and has no
/// meaning per shard; sharded callers use [`StopRule::Fixed`].
///
/// # Errors
///
/// Propagates compile/simulate failures (not SDCs — those are counted), and
/// returns [`RunError::Canceled`] if the hook's cancel flag is raised before
/// the last injected run completes.
pub fn fault_campaign_shard_hooked(
    program: &Program,
    spec: &RunSpec,
    config: &CampaignConfig,
    threads: usize,
    hook: CampaignHook<'_>,
    offset: usize,
) -> Result<(CampaignReport, Vec<StrikeRecord>, ForkStats), RunError> {
    let compiled = compile(program, &spec.compiler_config())?;
    if hook.canceled() {
        return Err(RunError::Canceled);
    }
    let (golden, snapshots) = match spec.sim_config().snapshot_interval {
        Some(interval) => {
            run_compiled_collecting_snapshots(&compiled, spec, &FaultPlan::none(), interval)?
        }
        None => (
            run_compiled_with_faults(&compiled, spec, &FaultPlan::none())?,
            Vec::new(),
        ),
    };
    // Shared accelerations, built once for the whole campaign: the
    // superblock pre-decode of the compiled program (when the scheme's sim
    // config enables translation) and the early-exit replay guide over the
    // golden run's snapshots. Neither changes any simulated outcome.
    let translation = spec
        .sim_config()
        .translate
        .then(|| Arc::new(Translation::new(&compiled.program)));
    let guide = (config.early_exit && !snapshots.is_empty())
        .then(|| ReplayGuide::new(&snapshots, &golden.outcome.stats, golden.outcome.ret));
    let horizon = golden.outcome.stats.cycles.max(2);
    // The target run count and the granularity at which results are folded
    // (and, for sequential stopping, at which stop decisions are taken).
    // Fixed campaigns use one chunk — exactly the historical single
    // `par_map` over all runs. CI-width campaigns fold every `STOP_CHUNK`
    // runs; the boundary set is independent of the thread count, so the
    // executed-run set (and the report) is too.
    let (target, chunk) = match config.stop {
        StopRule::Fixed => (config.runs, config.runs.max(1)),
        StopRule::CiWidth { cap, .. } => (cap.max(1), STOP_CHUNK),
    };
    let completed = AtomicUsize::new(0);
    let progress = hook.on_progress.map(|emit| {
        let every = if hook.progress_every == 0 {
            (target / 20).max(1)
        } else {
            hook.progress_every
        };
        ProgressShared::new(target, config.strikes_per_run, every, emit)
    });
    let worker = |_: usize, &i: &usize| {
        // Cooperative cancellation: one check per injected run, so a raised
        // flag abandons the campaign within a single simulation.
        if hook.canceled() {
            return Err(RunError::Canceled);
        }
        // `i` is the *global* run index (shard offset included): the plan,
        // and with it the run's outcome, must be the one the unsharded
        // campaign would compute at this index.
        let plan = plan_for_run(config, spec, i, horizon);
        // Fork from the latest snapshot strictly before the run's earliest
        // strike (snapshots are in capture order, i.e. ascending cycles):
        // every strike then lands strictly after the fork point, which is
        // exactly the snapshot determinism contract.
        let fork_point = plan
            .faults()
            .iter()
            .map(|f| f.strike_cycle)
            .min()
            .and_then(|first| snapshots.iter().take_while(|s| s.cycle() < first).last());
        let forked_at = fork_point.map(|s| s.cycle());
        let out = match fork_point {
            Some(snap) => {
                resume_compiled_replay(&compiled, snap, &plan, translation.clone(), guide.as_ref())
            }
            None => {
                run_compiled_replay(&compiled, spec, &plan, translation.clone(), guide.as_ref())
            }
        };
        // A watchdog abort is a campaign outcome (the strike hung the
        // program), not an infrastructure failure. Both the forked and the
        // from-scratch path clamp to the same absolute cycle bound, so the
        // classification is identical either way.
        let out = match out {
            Ok(r) => Ok((Some(r), forked_at)),
            Err(RunError::Sim(SimError::CycleLimit(_))) => Ok((None, forked_at)),
            Err(e) => Err(e),
        };
        if let Ok((run, _)) = &out {
            // Outcome tallies land before the release bump so any snapshot
            // taken at `done == n` has seen all n outcomes.
            if let Some(p) = progress.as_ref() {
                p.count_run(run.as_ref(), &golden);
            }
            let done = completed.fetch_add(1, Ordering::AcqRel) + 1;
            if let Some(on_run) = hook.on_run {
                on_run(done, target);
            }
            if let Some(p) = progress.as_ref() {
                p.maybe_emit(done);
            }
        }
        out
    };
    let mut report = CampaignReport::default();
    let mut fork = ForkStats::default();
    let mut records = Vec::with_capacity(target.min(4096) * config.strikes_per_run);
    let mut executed = 0usize;
    while executed < target {
        let end = target.min(executed + chunk);
        let indices: Vec<usize> = (offset + executed..offset + end).collect();
        let runs = par_map(&indices, threads, worker);
        for (&i, run) in indices.iter().zip(runs) {
            fold_run(
                i,
                run?,
                &golden,
                config,
                spec,
                horizon,
                &mut report,
                &mut fork,
                &mut records,
            );
        }
        executed = end;
        if let StopRule::CiWidth { half_width, .. } = config.stop {
            let est = RateEstimator::from_counts(report.sdc as u64, executed as u64);
            if est.half_width() <= half_width {
                break;
            }
        }
    }
    report.runs = executed;
    {
        use turnpike_metrics::Counter;
        report
            .metrics
            .add(Counter::CampaignRuns, report.runs as u64);
        report.metrics.add(Counter::CampaignSdc, report.sdc as u64);
        report.metrics.add(
            Counter::CampaignPostCompletion,
            report.post_completion as u64,
        );
        report
            .metrics
            .add(Counter::CampaignHangs, report.hangs as u64);
    }
    Ok((report, records, fork))
}

/// Fold one injected run's result into the campaign accumulators: fork
/// accounting, aggregate report fields, and one [`StrikeRecord`] per
/// strike. Pure per-run bookkeeping, called in ascending run order.
#[allow(clippy::too_many_arguments)]
fn fold_run(
    i: usize,
    run: (Option<RunResult>, Option<u64>),
    golden: &RunResult,
    config: &CampaignConfig,
    spec: &RunSpec,
    horizon: u64,
    report: &mut CampaignReport,
    fork: &mut ForkStats,
    records: &mut Vec<StrikeRecord>,
) {
    let (run, forked_at) = run;
    match forked_at {
        Some(cycle) => {
            fork.hits += 1;
            fork.prefix_cycles_saved += cycle;
        }
        None => fork.misses += 1,
    }
    let Some(run) = run else {
        // Watchdog abort: the run hung. Every strike of the run is
        // classified as a hang; there is no final state to audit.
        report.hangs += 1;
        let plan = plan_for_run(config, spec, i, horizon);
        for (k, f) in plan.faults().iter().enumerate() {
            records.push(StrikeRecord {
                run: i,
                strike: k,
                strike_cycle: f.strike_cycle,
                detect_latency: f.detect_latency,
                recovery_cycles: 0,
                detections: 0,
                outcome: StrikeOutcome::Hang,
            });
        }
        return;
    };
    if let Some(saved) = run.outcome.replay_saved {
        fork.replay_exits += 1;
        fork.replay_cycles_saved += saved;
    }
    report.recoveries += run.outcome.stats.recoveries;
    report.detections += run.outcome.stats.detections;
    report.parity_detections += run.outcome.stats.parity_detections;
    report.sensor_detections += run.outcome.stats.sensor_detections;
    // An early-exited run proved its final state equals the golden
    // run's (that is what the convergence check establishes), so its
    // empty memory maps must not be mistaken for a wiped memory.
    let sdc = run.outcome.replay_saved.is_none()
        && (run.outcome.ret != golden.outcome.ret || run.outcome.memory != golden.outcome.memory);
    if sdc {
        report.sdc += 1;
    }
    // Strikes that outnumber detections landed at or past program
    // completion and had no architectural effect — unless the run ended
    // in SDC, where the undetected strikes are precisely the corruption
    // (a strike in an unprotected region lands in-run with nothing
    // watching). Counted per strike, not per run: a 3-strike run with
    // one in-run strike contributes 2.
    if !sdc {
        report.post_completion += config
            .strikes_per_run
            .saturating_sub(run.outcome.stats.detections as usize);
    }
    // Re-derive the run's plan (a pure function of seed and index) and
    // classify each strike. In a clean run the earliest `detections`
    // strikes by cycle are the ones that landed in-run and the rest hit
    // after completion; an SDC verdict is attributed to every strike of
    // the run, since nothing observed which one corrupted the state.
    let plan = plan_for_run(config, spec, i, horizon);
    let mut order: Vec<usize> = (0..plan.faults().len()).collect();
    order.sort_by_key(|&k| plan.faults()[k].strike_cycle);
    let detections = run.outcome.stats.detections;
    for (rank, &k) in order.iter().enumerate() {
        let f = &plan.faults()[k];
        let outcome = if sdc {
            StrikeOutcome::Sdc
        } else if (rank as u64) < detections {
            StrikeOutcome::Recovered
        } else {
            StrikeOutcome::PostCompletion
        };
        records.push(StrikeRecord {
            run: i,
            strike: k,
            strike_cycle: f.strike_cycle,
            detect_latency: f.detect_latency,
            recovery_cycles: run.outcome.stats.recovery_cycles,
            detections,
            outcome,
        });
    }
    report.metrics.merge(&run.metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use turnpike_workloads::{kernel_by_name, Scale, Suite};

    fn kernel(suite: Suite, name: &str) -> Program {
        kernel_by_name(suite, name, Scale::Smoke)
            .expect("known kernel")
            .program
    }

    #[test]
    fn turnpike_is_sdc_free_on_diverse_kernels() {
        for (suite, name) in [
            (Suite::Cpu2006, "bwaves"),
            (Suite::Cpu2006, "hmmer"),
            (Suite::Cpu2017, "leela"),
            (Suite::Splash3, "radix"),
        ] {
            let p = kernel(suite, name);
            let report = fault_campaign(
                &p,
                &RunSpec::new(Scheme::Turnpike),
                &CampaignConfig {
                    runs: 12,
                    seed: 42,
                    strikes_per_run: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(report.sdc_free(), "{name}: {report:?}");
            assert!(report.detections > 0, "{name}: no strike landed in-run");
        }
    }

    #[test]
    fn turnstile_is_sdc_free_too() {
        let p = kernel(Suite::Cpu2006, "libquan");
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnstile),
            &CampaignConfig {
                runs: 12,
                seed: 7,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.sdc_free(), "{report:?}");
    }

    #[test]
    fn multiple_strikes_per_run_still_recover() {
        let p = kernel(Suite::Cpu2006, "leslie3d");
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnpike),
            &CampaignConfig {
                runs: 8,
                seed: 3,
                strikes_per_run: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.sdc_free(), "{report:?}");
        assert!(report.recoveries >= report.runs as u64 / 2);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 5,
            seed: 99,
            strikes_per_run: 1,
            ..Default::default()
        };
        let a = fault_campaign(&p, &RunSpec::new(Scheme::Turnpike), &cfg).unwrap();
        let b = fault_campaign(&p, &RunSpec::new(Scheme::Turnpike), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let p = kernel(Suite::Cpu2006, "hmmer");
        let cfg = CampaignConfig {
            runs: 8,
            seed: 1234,
            strikes_per_run: 2,
            ..Default::default()
        };
        let spec = RunSpec::new(Scheme::Turnpike);
        let serial = fault_campaign(&p, &spec, &cfg).unwrap();
        for threads in [2, 4, 8] {
            let par = fault_campaign_par(&p, &spec, &cfg, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn report_metrics_agree_with_fixed_fields() {
        use turnpike_metrics::Counter;
        let p = kernel(Suite::Cpu2006, "bwaves");
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnpike),
            &CampaignConfig {
                runs: 6,
                seed: 11,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let m = &report.metrics;
        assert_eq!(m.counter(Counter::CampaignRuns), report.runs as u64);
        assert_eq!(m.counter(Counter::CampaignSdc), report.sdc as u64);
        assert_eq!(
            m.counter(Counter::CampaignPostCompletion),
            report.post_completion as u64
        );
        assert_eq!(m.counter(Counter::Recoveries), report.recoveries);
        assert_eq!(m.counter(Counter::Detections), report.detections);
        // The fold summed every injected run's cycles.
        assert!(m.counter(Counter::Cycles) > 0);
    }

    #[test]
    fn strike_records_cover_every_strike_in_order() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 6,
            seed: 11,
            strikes_per_run: 2,
            ..Default::default()
        };
        let spec = RunSpec::new(Scheme::Turnpike);
        let (report, records) = fault_campaign_records(&p, &spec, &cfg, 1).unwrap();
        assert_eq!(records.len(), cfg.runs * cfg.strikes_per_run);
        // Deterministic (run, strike-by-cycle) order.
        for w in records.windows(2) {
            assert!(
                w[0].run < w[1].run
                    || (w[0].run == w[1].run && w[0].strike_cycle <= w[1].strike_cycle),
                "{w:?}"
            );
        }
        // Outcome classes reconcile with the aggregate report.
        let post = records
            .iter()
            .filter(|r| r.outcome == StrikeOutcome::PostCompletion)
            .count();
        assert_eq!(post, report.post_completion);
        assert!(records.iter().all(|r| r.outcome != StrikeOutcome::Sdc));
        // Parallel production is byte-identical.
        let (_, records4) = fault_campaign_records(&p, &spec, &cfg, 4).unwrap();
        assert_eq!(records, records4);
    }

    #[test]
    fn strike_records_stream_as_stable_jsonl() {
        let r = StrikeRecord {
            run: 3,
            strike: 0,
            strike_cycle: 120,
            detect_latency: 7,
            recovery_cycles: 42,
            detections: 1,
            outcome: StrikeOutcome::Recovered,
        };
        assert_eq!(
            r.to_json(),
            "{\"run\":3,\"strike\":0,\"strike_cycle\":120,\"detect_latency\":7,\
             \"recovery_cycles\":42,\"detections\":1,\"outcome\":\"recovered\"}"
        );
        let mut buf = Vec::new();
        write_strike_records(&[r.clone(), r], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn path_writer_creates_missing_parent_directories() {
        let r = StrikeRecord {
            run: 0,
            strike: 0,
            strike_cycle: 10,
            detect_latency: 3,
            recovery_cycles: 9,
            detections: 1,
            outcome: StrikeOutcome::Recovered,
        };
        let dir = std::env::temp_dir().join(format!(
            "turnpike-strikes-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/strikes.jsonl");
        write_strike_records_to_path(&[r.clone(), r], &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"run\":0,"));
        // A bare filename (no parent component) must also work.
        let mut bare = Vec::new();
        write_strike_records(&[], &mut bare).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hooked_campaign_matches_unhooked_and_reports_progress() {
        use std::sync::atomic::AtomicUsize;
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 6,
            seed: 11,
            strikes_per_run: 1,
            ..Default::default()
        };
        let spec = RunSpec::new(Scheme::Turnpike);
        let plain = fault_campaign_forked(&p, &spec, &cfg, 2).unwrap();
        let calls = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let on_run = |done: usize, total: usize| {
            assert_eq!(total, 6);
            calls.fetch_add(1, Ordering::Relaxed);
            peak.fetch_max(done, Ordering::Relaxed);
        };
        let hook = CampaignHook {
            cancel: None,
            on_run: Some(&on_run),
            ..CampaignHook::default()
        };
        let hooked = fault_campaign_hooked(&p, &spec, &cfg, 2, hook).unwrap();
        assert_eq!(plain, hooked, "hooks must not change the report");
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(peak.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn raised_cancel_flag_abandons_the_campaign() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 4,
            seed: 5,
            strikes_per_run: 1,
            ..Default::default()
        };
        let cancel = AtomicBool::new(true);
        let hook = CampaignHook {
            cancel: Some(&cancel),
            on_run: None,
            ..CampaignHook::default()
        };
        let err = fault_campaign_hooked(&p, &RunSpec::new(Scheme::Turnpike), &cfg, 1, hook)
            .expect_err("pre-raised cancel flag");
        assert_eq!(err, RunError::Canceled);
    }

    #[test]
    fn ci_width_stop_rule_stops_early_with_tight_ci() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let spec = RunSpec::new(Scheme::Turnpike);
        let cfg = CampaignConfig {
            seed: 21,
            strikes_per_run: 1,
            stop: StopRule::CiWidth {
                half_width: 0.06,
                cap: 64,
            },
            ..Default::default()
        };
        let report = fault_campaign_par(&p, &spec, &cfg, 2).unwrap();
        // Turnpike is SDC-free, so the Wilson interval on 0/n tightens
        // past 0.06 at the second chunk boundary — well before the cap.
        assert_eq!(report.runs, 2 * STOP_CHUNK, "{report:?}");
        assert!(report.sdc_free());
        let est =
            turnpike_metrics::RateEstimator::from_counts(report.sdc as u64, report.runs as u64);
        assert!(est.half_width() <= 0.06, "{}", est.half_width());
        // The executed-run set is a function of the config alone: any
        // thread count stops at the same boundary with the same report.
        for threads in [1, 4] {
            let again = fault_campaign_par(&p, &spec, &cfg, threads).unwrap();
            assert_eq!(report, again, "threads={threads}");
        }
        // The campaign counters reflect the runs actually executed.
        use turnpike_metrics::Counter;
        assert_eq!(
            report.metrics.counter(Counter::CampaignRuns),
            report.runs as u64
        );
        // A hopeless half-width exhausts the cap instead of stopping.
        let capped = CampaignConfig {
            stop: StopRule::CiWidth {
                half_width: 1e-6,
                cap: 8,
            },
            ..cfg
        };
        let report = fault_campaign_par(&p, &spec, &capped, 2).unwrap();
        assert_eq!(report.runs, 8);
    }

    #[test]
    fn progress_snapshots_reconcile_and_never_change_the_report() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 6,
            seed: 11,
            strikes_per_run: 1,
            ..Default::default()
        };
        let spec = RunSpec::new(Scheme::Turnpike);
        let plain = fault_campaign_forked(&p, &spec, &cfg, 2).unwrap();
        let snapshots: Mutex<Vec<CampaignProgress>> = Mutex::new(Vec::new());
        let on_progress = |s: &CampaignProgress| {
            snapshots.lock().unwrap().push(*s);
        };
        let hook = CampaignHook {
            on_progress: Some(&on_progress),
            progress_every: 2,
            ..CampaignHook::default()
        };
        let hooked = fault_campaign_hooked(&p, &spec, &cfg, 2, hook).unwrap();
        assert_eq!(
            plain, hooked,
            "progress snapshots must not change the report"
        );
        let snapshots = snapshots.into_inner().unwrap();
        assert!(!snapshots.is_empty());
        // The final snapshot is exact: it fires after every run's outcome
        // has been tallied, so the counts reconcile with the report.
        let last = snapshots.last().unwrap();
        assert_eq!(last.done, 6);
        assert_eq!(last.total, 6);
        assert_eq!(
            last.recovered + last.post_completion + last.sdc + last.hangs,
            6
        );
        let report = &hooked.0;
        assert_eq!(last.sdc, report.sdc);
        assert_eq!(last.hangs, report.hangs);
        assert_eq!(last.detections, report.detections);
        assert_eq!(last.sdc_rate.trials(), 6);
        assert_eq!(last.sdc_rate.successes(), report.sdc as u64);
        let (lo, hi) = last.sdc_rate.wilson_bounds();
        assert!(lo <= last.sdc_rate.rate() && last.sdc_rate.rate() <= hi);
        // Deliveries are strictly monotone in `done`: a staler snapshot
        // losing the race to the lock is dropped, never delivered late.
        for w in snapshots.windows(2) {
            assert!(w[0].done < w[1].done, "{w:?}");
        }
    }

    #[test]
    fn capped_record_stream_is_bounded_documented_and_deterministic() {
        let p = kernel(Suite::Cpu2006, "bwaves");
        let cfg = CampaignConfig {
            runs: 6,
            seed: 11,
            strikes_per_run: 2,
            ..Default::default()
        };
        let (_, records) =
            fault_campaign_records(&p, &RunSpec::new(Scheme::Turnpike), &cfg, 1).unwrap();
        assert_eq!(records.len(), 12);
        // Uncapped via the capped entry point is byte-identical to the
        // plain writer — no header, no sampling.
        let mut plain = Vec::new();
        write_strike_records(&records, &mut plain).unwrap();
        let mut uncapped = Vec::new();
        write_strike_records_capped(&records, None, 0, &mut uncapped).unwrap();
        assert_eq!(plain, uncapped);
        // Capped output: one header line documenting the sampling, then
        // `cap` records in original order, reproducible for a seed.
        let mut capped = Vec::new();
        write_strike_records_capped(&records, Some(5), 99, &mut capped).unwrap();
        let text = String::from_utf8(capped.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(
            lines[0],
            "{\"header\":\"strike_records\",\"sampling\":\"reservoir\",\"total\":12,\
             \"written\":5,\"cap\":5,\"seed\":99}"
        );
        let full: Vec<String> = records.iter().map(|r| r.to_json()).collect();
        let mut last_pos = 0;
        for line in &lines[1..] {
            let pos = full.iter().position(|l| l == line).expect("sampled record");
            assert!(pos >= last_pos, "sampled records keep original order");
            last_pos = pos;
        }
        let mut again = Vec::new();
        write_strike_records_capped(&records, Some(5), 99, &mut again).unwrap();
        assert_eq!(capped, again);
        // A cap at or above the population writes everything.
        let mut all = Vec::new();
        write_strike_records_capped(&records, Some(64), 99, &mut all).unwrap();
        let all = String::from_utf8(all).unwrap();
        assert_eq!(all.lines().count(), 13);
        assert!(all.contains("\"written\":12,\"cap\":64"));
    }

    #[test]
    fn run_streams_are_independent() {
        // Distinct run indices derive distinct seeds; same index is stable.
        let seen: std::collections::BTreeSet<u64> =
            (0..100).map(|i| super::run_seed(7, i)).collect();
        assert_eq!(seen.len(), 100);
        assert_eq!(super::run_seed(7, 3), super::run_seed(7, 3));
        assert_ne!(super::run_seed(7, 3), super::run_seed(8, 3));
    }
}
