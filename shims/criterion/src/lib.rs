//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: `Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This shim measures wall-clock mean/min over
//! `sample_size` timed iterations after one warm-up and prints one line
//! per benchmark — enough to track regressions in CI logs, without
//! criterion's statistics, HTML reports, or baseline storage.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifier for one parameterized benchmark, `{function}/{parameter}`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing harness handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times in nanoseconds.
    nanos: Vec<u128>,
}

impl Bencher {
    /// Time `f` over the configured number of samples (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.nanos.push(t0.elapsed().as_nanos());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.run_one(&label, samples, |b| f(b));
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.run_one(&label, samples, |b| f(b, input));
        self
    }

    /// End the group (report output is per-benchmark, nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Criterion {
    /// Driver honoring a `cargo bench -- <filter>` substring argument.
    pub fn from_args() -> Self {
        // Cargo passes harness flags like `--bench`; ignore anything
        // starting with '-' and treat the first bare argument as a filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            nanos: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        if bencher.nanos.is_empty() {
            println!("bench {label:<50} (no samples)");
            return;
        }
        let mean = bencher.nanos.iter().sum::<u128>() / bencher.nanos.len() as u128;
        let min = *bencher.nanos.iter().min().expect("nonempty");
        println!(
            "bench {label:<50} mean {:>12} min {:>12} ({} samples)",
            format_nanos(mean),
            format_nanos(min),
            bencher.nanos.len()
        );
    }
}

fn format_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let input = 21u64;
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("double", "21"), &input, |b, &x| {
            b.iter(|| {
                seen = x * 2;
            })
        });
        group.finish();
        assert_eq!(seen, 42);
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
    }
}
