//! Compiler configuration and per-pass statistics.

use std::fmt;
use turnpike_isa::ProtectionMode;

/// How the compiler assigns per-region protection modes.
///
/// The default, [`Uniform`](ProtectionPolicy::Uniform), keeps the scheme's
/// single protection level for the whole program and attaches *no*
/// per-region metadata — programs compiled this way are byte-identical to
/// programs compiled before region-granular resilience existed. The other
/// policies enable the vulnerability-analysis pass, which tags every static
/// region with a [`ProtectionMode`] the simulator honors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtectionPolicy {
    /// One scheme-wide protection level; no region metadata (the default).
    #[default]
    Uniform,
    /// Tag every region with the same explicit mode. `ForceUniform` with
    /// [`ProtectionMode::Turnpike`] is the degenerate identity: the tags
    /// all equal the default, so the emitted program carries an empty mode
    /// map and matches a [`Uniform`](ProtectionPolicy::Uniform) compile
    /// byte for byte.
    ForceUniform(ProtectionMode),
    /// Vulnerability-scored: regions whose score (store count + live-out
    /// pressure + loop depth; see `vulnerability::score`) is below
    /// `threshold` run unprotected, the rest keep full protection.
    Adaptive {
        /// Minimum vulnerability score a region must reach to stay
        /// protected.
        threshold: u32,
    },
}

/// Which passes the compiler runs.
///
/// The eight evaluation configurations of the paper's Figure 21 are sweeps
/// over this struct: `baseline()` (no resilience), `turnstile(sb)` (regions +
/// eager checkpointing only), and `turnpike(sb)` (everything on); the
/// intermediate rungs toggle individual fields.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CompilerConfig {
    /// Insert verifiable regions and eager checkpoints (Turnstile base).
    /// When `false`, the program compiles without any resilience support.
    pub resilient: bool,
    /// Store buffer size of the target core; the region partitioner keeps
    /// each region at or below `max(1, sb_size / 2)` stores so one region's
    /// verification can overlap the next region's execution (paper §4.3.1).
    pub sb_size: u32,
    /// Loop induction variable merging (paper §4.1.2).
    pub livm: bool,
    /// Optimal checkpoint pruning (paper §4.1.3).
    pub prune: bool,
    /// Checkpoint sinking / loop-invariant code motion (paper §4.1.4).
    pub licm: bool,
    /// Checkpoint-aware instruction scheduling (paper §4.2).
    pub sched: bool,
    /// Store-aware register allocation: weight spill-cost writes higher so
    /// frequently-written variables stay in registers (paper §4.1.1).
    pub store_aware_ra: bool,
    /// Per-region protection mode assignment (see [`ProtectionPolicy`]).
    pub policy: ProtectionPolicy,
}

impl CompilerConfig {
    /// No resilience support at all (the paper's normalization baseline).
    pub fn baseline() -> Self {
        CompilerConfig {
            resilient: false,
            sb_size: 4,
            livm: false,
            prune: false,
            licm: false,
            sched: false,
            store_aware_ra: false,
            policy: ProtectionPolicy::Uniform,
        }
    }

    /// Turnstile: regions + eager checkpointing, no Turnpike optimizations.
    pub fn turnstile(sb_size: u32) -> Self {
        CompilerConfig {
            resilient: true,
            sb_size,
            livm: false,
            prune: false,
            licm: false,
            sched: false,
            store_aware_ra: false,
            policy: ProtectionPolicy::Uniform,
        }
    }

    /// Full Turnpike: all compiler optimizations enabled.
    pub fn turnpike(sb_size: u32) -> Self {
        CompilerConfig {
            resilient: true,
            sb_size,
            livm: true,
            prune: true,
            licm: true,
            sched: true,
            store_aware_ra: true,
            policy: ProtectionPolicy::Uniform,
        }
    }

    /// The region store budget derived from the SB size.
    pub fn region_budget(&self) -> u32 {
        (self.sb_size / 2).max(1)
    }
}

/// Manual `Debug` instead of the derive: the rendering feeds persistent
/// store/cache keys, so the seven pre-policy fields must keep their exact
/// derived form and `policy` only appears when it deviates from the
/// default. Existing uniform configurations therefore render — and key —
/// exactly as they did before per-region protection existed.
impl fmt::Debug for CompilerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("CompilerConfig");
        d.field("resilient", &self.resilient)
            .field("sb_size", &self.sb_size)
            .field("livm", &self.livm)
            .field("prune", &self.prune)
            .field("licm", &self.licm)
            .field("sched", &self.sched)
            .field("store_aware_ra", &self.store_aware_ra);
        if self.policy != ProtectionPolicy::Uniform {
            d.field("policy", &self.policy);
        }
        d.finish()
    }
}

impl Default for CompilerConfig {
    /// Defaults to full Turnpike on a 4-entry store buffer (the paper's
    /// Cortex-A53 configuration).
    fn default() -> Self {
        CompilerConfig::turnpike(4)
    }
}

/// Statistics collected while compiling; feeds the store-breakdown and
/// code-size analyses (paper Figures 4, 23, 26).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Checkpoints present after eager insertion (before pruning/LICM).
    pub ckpts_inserted: u32,
    /// Checkpoints removed by optimal pruning.
    pub ckpts_pruned: u32,
    /// Net checkpoints removed by LICM loop-exit sinking.
    pub ckpts_licm_removed: u32,
    /// Spill stores emitted by register allocation.
    pub spill_stores: u32,
    /// Spill reload loads emitted by register allocation.
    pub spill_loads: u32,
    /// Virtual registers spilled.
    pub spilled_vregs: u32,
    /// Loop induction variables merged away by LIVM.
    pub ivs_merged: u32,
    /// Region boundaries in the final code.
    pub boundaries: u32,
    /// Extra boundary-splitting fixpoint iterations taken.
    pub split_iterations: u32,
    /// Machine instructions in the final program.
    pub final_insts: u32,
    /// Machine instructions a baseline (resilience-free) compile of the same
    /// function would contain; set by the pipeline for code-size accounting.
    pub baseline_insts: u32,
}

impl PassStats {
    /// Project the `compile.*` keys of a metrics registry into the typed
    /// stats view. The pass manager derives [`crate::CompileOutput::stats`]
    /// this way, so the fixed fields and the registry always agree.
    pub fn from_metrics(m: &turnpike_metrics::MetricSet) -> Self {
        use turnpike_metrics::Counter;
        let get = |k: Counter| m.counter(k) as u32;
        PassStats {
            ckpts_inserted: get(Counter::CkptsInserted),
            ckpts_pruned: get(Counter::CkptsPruned),
            ckpts_licm_removed: get(Counter::CkptsLicmRemoved),
            spill_stores: get(Counter::SpillStores),
            spill_loads: get(Counter::SpillLoads),
            spilled_vregs: get(Counter::SpilledVregs),
            ivs_merged: get(Counter::IvsMerged),
            boundaries: get(Counter::Boundaries),
            split_iterations: get(Counter::SplitIterations),
            final_insts: get(Counter::FinalInsts),
            baseline_insts: get(Counter::BaselineInsts),
        }
    }

    /// Code-size increase of the resilient binary over the baseline,
    /// as a fraction (e.g. `0.05` = 5%). Zero when baseline size is unknown.
    pub fn code_size_increase(&self) -> f64 {
        if self.baseline_insts == 0 {
            0.0
        } else {
            self.final_insts as f64 / self.baseline_insts as f64 - 1.0
        }
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ckpts: {} inserted, {} pruned, {} licm-removed; spills: {} stores/{} loads ({} vregs); \
             {} IVs merged; {} boundaries; insts {} vs baseline {} ({:+.1}%)",
            self.ckpts_inserted,
            self.ckpts_pruned,
            self.ckpts_licm_removed,
            self.spill_stores,
            self.spill_loads,
            self.spilled_vregs,
            self.ivs_merged,
            self.boundaries,
            self.final_insts,
            self.baseline_insts,
            self.code_size_increase() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let b = CompilerConfig::baseline();
        assert!(!b.resilient && !b.prune);
        let t = CompilerConfig::turnstile(4);
        assert!(t.resilient && !t.prune && !t.licm && !t.sched && !t.livm && !t.store_aware_ra);
        let p = CompilerConfig::turnpike(4);
        assert!(p.resilient && p.prune && p.licm && p.sched && p.livm && p.store_aware_ra);
        assert_eq!(CompilerConfig::default(), p);
    }

    #[test]
    fn debug_rendering_is_stable_for_uniform_configs() {
        // The Debug form feeds persistent store keys: uniform configs must
        // render exactly as the pre-policy derive did, and the policy field
        // must appear only when non-default.
        assert_eq!(
            format!("{:?}", CompilerConfig::baseline()),
            "CompilerConfig { resilient: false, sb_size: 4, livm: false, prune: false, \
             licm: false, sched: false, store_aware_ra: false }"
        );
        let mut c = CompilerConfig::turnstile(8);
        assert!(!format!("{c:?}").contains("policy"));
        c.policy = ProtectionPolicy::ForceUniform(ProtectionMode::Turnpike);
        assert!(format!("{c:?}").contains("policy: ForceUniform(Turnpike)"));
        c.policy = ProtectionPolicy::Adaptive { threshold: 6 };
        assert!(format!("{c:?}").contains("policy: Adaptive { threshold: 6 }"));
    }

    #[test]
    fn region_budget_floors_at_one() {
        assert_eq!(CompilerConfig::turnstile(4).region_budget(), 2);
        assert_eq!(CompilerConfig::turnstile(1).region_budget(), 1);
        assert_eq!(CompilerConfig::turnstile(40).region_budget(), 20);
    }

    #[test]
    fn from_metrics_round_trips() {
        use turnpike_metrics::{Counter, MetricSet};
        let mut m = MetricSet::new();
        m.add(Counter::CkptsInserted, 3);
        m.add(Counter::SpillStores, 2);
        m.add(Counter::FinalInsts, 105);
        m.add(Counter::BaselineInsts, 100);
        let s = PassStats::from_metrics(&m);
        assert_eq!(s.ckpts_inserted, 3);
        assert_eq!(s.spill_stores, 2);
        assert_eq!(s.ckpts_pruned, 0);
        assert!((s.code_size_increase() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn code_size_increase() {
        let mut s = PassStats::default();
        assert_eq!(s.code_size_increase(), 0.0);
        s.baseline_insts = 100;
        s.final_insts = 105;
        assert!((s.code_size_increase() - 0.05).abs() < 1e-12);
        assert!(s.to_string().contains("+5.0%"));
    }
}
