//! # turnpike — facade crate
//!
//! Reproduction of *Turnpike: Lightweight Soft Error Resilience for In-Order
//! Cores* (MICRO 2021). This crate re-exports the workspace's public API so
//! downstream users can depend on a single crate:
//!
//! * [`ir`] — compiler IR, analyses, and the reference interpreter.
//! * [`isa`] — the machine instruction set executed by the simulator.
//! * [`compiler`] — Turnstile/Turnpike compilation passes and codegen.
//! * [`sim`] — the cycle-level dual-issue in-order core model.
//! * [`sensor`] — acoustic-sensor detection model and fault injection.
//! * [`resilience`] — end-to-end resilient execution and SDC audits.
//! * [`workloads`] — the 36 synthetic evaluation kernels.
//! * [`model`] — analytic sensor-latency and area/energy models.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use turnpike_compiler as compiler;
pub use turnpike_ir as ir;
pub use turnpike_isa as isa;
pub use turnpike_model as model;
pub use turnpike_resilience as resilience;
pub use turnpike_sensor as sensor;
pub use turnpike_sim as sim;
pub use turnpike_workloads as workloads;
