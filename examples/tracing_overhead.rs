//! Tracing-overhead probe: wall-clock per fault-free run (EXPERIMENTS.md
//! "Tracing overhead"). Modes: default (no sink,
//! no histograms), `traced` (ring-buffer sink attached), `hist`
//! (histograms enabled, no sink).
use std::time::Instant;
use turnpike::compiler::{compile, CompilerConfig};
use turnpike::sim::{shared_sink, Core, SimConfig, Trace};
use turnpike::workloads::{kernel_by_name, Scale, Suite};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let mut total_ns = 0u128;
    let mut runs = 0u64;
    for name in ["bwaves", "hmmer", "leslie3d", "libquan"] {
        let k = kernel_by_name(Suite::Cpu2006, name, Scale::Smoke).unwrap();
        for (cc, mut sc) in [
            (CompilerConfig::turnpike(4), SimConfig::turnpike(4, 10)),
            (CompilerConfig::turnstile(4), SimConfig::turnstile(4, 10)),
        ] {
            if mode == "hist" {
                sc.histograms = true;
            }
            let compiled = compile(&k.program, &cc).unwrap();
            let one = |sc: SimConfig| {
                let mut core = Core::new(&compiled.program, sc);
                if mode == "traced" {
                    core.attach_sink(shared_sink(Trace::new(1 << 16)));
                }
                core.run().unwrap();
            };
            for _ in 0..20 {
                one(sc.clone());
            }
            let t0 = Instant::now();
            const N: u64 = 300;
            for _ in 0..N {
                one(sc.clone());
            }
            total_ns += t0.elapsed().as_nanos();
            runs += N;
        }
    }
    println!("ns_per_run {}", total_ns / runs as u128);
}
