//! Criterion micro-benchmarks: compiler pass pipeline cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turnpike_compiler::{compile, CompilerConfig};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    let kernel = kernel_by_name(Suite::Cpu2006, "gemsfdtd", Scale::Smoke).expect("kernel exists");
    for (label, cfg) in [
        ("baseline", CompilerConfig::baseline()),
        ("turnstile", CompilerConfig::turnstile(4)),
        ("turnpike", CompilerConfig::turnpike(4)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "gemsfdtd"), &kernel, |b, k| {
            b.iter(|| compile(&k.program, &cfg).expect("compiles"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
