//! Resilience event tracing.
//!
//! The simulator narrates the interesting *resilience* events of a run —
//! region lifecycle, store release decisions, SB occupancy, CLQ checks,
//! stalls, strikes, detections, recoveries — as a stream of
//! [`TraceEvent`]s pushed into a [`TraceSink`]. Three sinks ship with the
//! crate:
//!
//! * [`Trace`] — a bounded in-memory ring buffer (oldest events evicted
//!   past the cap) for tests and interactive inspection; obtain one with
//!   [`Core::run_traced`](crate::Core::run_traced).
//! * [`JsonlSink`] — a streaming writer emitting one JSON object per
//!   event, for post-processing and golden-file diffs.
//! * [`ChromeTrace`] — an exporter rendering region lifecycles, SB
//!   occupancy, stalls, and strike→detection→recovery arcs in the Chrome
//!   trace-event format, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`.
//!
//! Attach any sink with [`Core::attach_sink`](crate::Core::attach_sink).
//! When no sink is attached the emission sites reduce to a branch on a
//! `None` option, so untraced runs pay (and produce) nothing.

use std::collections::VecDeque;
use std::rc::Rc;

/// Why the pipeline stalled (trace-visible mirror of the stall counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// No free slot in the gated store buffer.
    SbFull,
    /// Waiting on a register operand.
    DataHazard,
    /// Waiting on a register operand, and the consumer is a checkpoint.
    CkptHazard,
    /// Waiting for the single memory port.
    MemPort,
    /// Waiting for RBB room at a region boundary.
    RbbFull,
}

impl StallKind {
    /// Stable snake-case name (used in JSONL and Chrome trace output).
    pub fn name(self) -> &'static str {
        match self {
            StallKind::SbFull => "sb_full",
            StallKind::DataHazard => "data_hazard",
            StallKind::CkptHazard => "ckpt_hazard",
            StallKind::MemPort => "mem_port",
            StallKind::RbbFull => "rbb_full",
        }
    }
}

/// One traced event, stamped with the cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A region boundary committed: instance `seq` begins.
    RegionStart {
        /// Cycle of the boundary commit.
        cycle: u64,
        /// Dynamic region sequence number.
        seq: u64,
    },
    /// A region instance passed its WCDL window error-free.
    RegionVerified {
        /// Cycle at which verification was processed.
        cycle: u64,
        /// Dynamic region sequence number.
        seq: u64,
    },
    /// A regular store bypassed verification via the WAR-free check.
    WarFreeRelease {
        /// Issue cycle.
        cycle: u64,
        /// Store address.
        addr: u64,
    },
    /// A checkpoint bypassed verification via hardware coloring.
    ColoredRelease {
        /// Issue cycle.
        cycle: u64,
        /// Checkpointed register.
        reg: u8,
        /// Assigned color.
        color: u8,
    },
    /// A store (regular or checkpoint fallback) entered the gated SB.
    Quarantined {
        /// Issue cycle.
        cycle: u64,
        /// Owning dynamic region.
        seq: u64,
    },
    /// A quarantined entry drained to cache after verification (or was
    /// force-drained at end of run / recovery settle).
    SbRelease {
        /// Release cycle.
        cycle: u64,
        /// Owning dynamic region.
        seq: u64,
    },
    /// A particle strike landed.
    Strike {
        /// Strike cycle.
        cycle: u64,
    },
    /// An error was detected (sensor or parity).
    Detection {
        /// Detection cycle.
        cycle: u64,
    },
    /// Recovery ran: unverified state squashed, `target` restarted.
    Recovery {
        /// Cycle recovery began.
        cycle: u64,
        /// Dynamic region instance re-executed.
        target_seq: u64,
        /// PC execution resumed from.
        resume_pc: u32,
    },
    /// Gated-SB occupancy sample, taken whenever occupancy changes.
    SbOccupancy {
        /// Sample cycle.
        cycle: u64,
        /// Entries currently quarantined.
        entries: u32,
        /// Region executing when the sample was taken.
        seq: u64,
    },
    /// A regular store consulted the committed load queue.
    ClqCheck {
        /// Check cycle.
        cycle: u64,
        /// Store address checked.
        addr: u64,
        /// Region issuing the store.
        seq: u64,
        /// `true` = hit (proven WAR-free, fast released); `false` = miss
        /// (quarantined).
        war_free: bool,
    },
    /// A verified SB entry drained into the data cache.
    CacheWriteback {
        /// Writeback cycle.
        cycle: u64,
        /// Written address.
        addr: u64,
        /// Region the store belonged to.
        seq: u64,
    },
    /// The pipeline stalled.
    Stall {
        /// Cycle the stall began.
        cycle: u64,
        /// PC of the stalled instruction.
        pc: u32,
        /// Region executing when the stall began.
        seq: u64,
        /// Stall reason.
        kind: StallKind,
        /// Stall length in cycles.
        cycles: u64,
    },
}

impl TraceEvent {
    /// The cycle stamp of the event.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::RegionStart { cycle, .. }
            | TraceEvent::RegionVerified { cycle, .. }
            | TraceEvent::WarFreeRelease { cycle, .. }
            | TraceEvent::ColoredRelease { cycle, .. }
            | TraceEvent::Quarantined { cycle, .. }
            | TraceEvent::SbRelease { cycle, .. }
            | TraceEvent::Strike { cycle }
            | TraceEvent::Detection { cycle }
            | TraceEvent::Recovery { cycle, .. }
            | TraceEvent::SbOccupancy { cycle, .. }
            | TraceEvent::ClqCheck { cycle, .. }
            | TraceEvent::CacheWriteback { cycle, .. }
            | TraceEvent::Stall { cycle, .. } => cycle,
        }
    }

    /// Stable snake-case kind name (the `"kind"` field of the JSONL
    /// schema).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RegionStart { .. } => "region_start",
            TraceEvent::RegionVerified { .. } => "region_verified",
            TraceEvent::WarFreeRelease { .. } => "war_free_release",
            TraceEvent::ColoredRelease { .. } => "colored_release",
            TraceEvent::Quarantined { .. } => "quarantined",
            TraceEvent::SbRelease { .. } => "sb_release",
            TraceEvent::Strike { .. } => "strike",
            TraceEvent::Detection { .. } => "detection",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::SbOccupancy { .. } => "sb_occupancy",
            TraceEvent::ClqCheck { .. } => "clq_check",
            TraceEvent::CacheWriteback { .. } => "cache_writeback",
            TraceEvent::Stall { .. } => "stall",
        }
    }

    /// One-line JSON object for the event (the JSONL record schema):
    /// always `cycle` first and `kind` second, then the variant's fields
    /// in declaration order. All values are numbers, booleans, or fixed
    /// enum names, so no string escaping is ever required.
    pub fn to_json(&self) -> String {
        let head = format!("{{\"cycle\":{},\"kind\":\"{}\"", self.cycle(), self.kind());
        let rest = match *self {
            TraceEvent::RegionStart { seq, .. } | TraceEvent::RegionVerified { seq, .. } => {
                format!(",\"seq\":{seq}")
            }
            TraceEvent::WarFreeRelease { addr, .. } => format!(",\"addr\":{addr}"),
            TraceEvent::ColoredRelease { reg, color, .. } => {
                format!(",\"reg\":{reg},\"color\":{color}")
            }
            TraceEvent::Quarantined { seq, .. } | TraceEvent::SbRelease { seq, .. } => {
                format!(",\"seq\":{seq}")
            }
            TraceEvent::Strike { .. } | TraceEvent::Detection { .. } => String::new(),
            TraceEvent::Recovery {
                target_seq,
                resume_pc,
                ..
            } => format!(",\"target_seq\":{target_seq},\"resume_pc\":{resume_pc}"),
            TraceEvent::SbOccupancy { entries, seq, .. } => {
                format!(",\"entries\":{entries},\"seq\":{seq}")
            }
            TraceEvent::ClqCheck {
                addr,
                seq,
                war_free,
                ..
            } => format!(",\"addr\":{addr},\"seq\":{seq},\"war_free\":{war_free}"),
            TraceEvent::CacheWriteback { addr, seq, .. } => {
                format!(",\"addr\":{addr},\"seq\":{seq}")
            }
            TraceEvent::Stall {
                pc,
                seq,
                kind,
                cycles,
                ..
            } => format!(
                ",\"pc\":{pc},\"seq\":{seq},\"stall\":\"{}\",\"cycles\":{cycles}",
                kind.name()
            ),
        };
        head + &rest + "}"
    }
}

/// A consumer of the simulator's resilience event stream.
///
/// The core holds at most one attached sink and forwards every emitted
/// [`TraceEvent`] to it, in emission order. Implementations must not
/// assume *global* cycle monotonicity: the event-skip simulator settles
/// future verification work before processing a strike that landed
/// earlier, so cycles are non-decreasing per event kind but may step
/// backwards across kinds.
pub trait TraceSink {
    /// Consume one event.
    fn record(&mut self, ev: &TraceEvent);
}

/// Box a sink into the reference-counted handle
/// [`Core::attach_sink`](crate::Core::attach_sink) accepts, retaining a
/// handle for reading the sink back after the run.
///
/// ```
/// # use turnpike_sim::{shared_sink, Trace};
/// let sink = shared_sink(Trace::new(1024));
/// // core.attach_sink(sink.clone());
/// // ... run ...
/// let trace = sink.borrow();
/// # assert_eq!(trace.len(), 0);
/// ```
pub fn shared_sink<S: TraceSink + 'static>(sink: S) -> Rc<std::cell::RefCell<S>> {
    Rc::new(std::cell::RefCell::new(sink))
}

/// A bounded in-memory recorder: a true ring buffer. When full, the
/// *oldest* event is evicted to admit the new one, so the trace always
/// holds the most recent `cap` events and `dropped` counts the evictions.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    cap: usize,
    /// Oldest events evicted because the buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// A trace holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Trace {
            events: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Record an event, evicting the oldest one if the buffer is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, selected by a predicate.
    pub fn filter<'a, P>(&'a self, pred: P) -> impl Iterator<Item = &'a TraceEvent>
    where
        P: Fn(&TraceEvent) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(e))
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65536)
    }
}

impl TraceSink for Trace {
    fn record(&mut self, ev: &TraceEvent) {
        self.push(*ev);
    }
}

/// A streaming sink writing one JSON object per event (JSON Lines).
///
/// Events are formatted with [`TraceEvent::to_json`] — a fixed,
/// diff-stable schema — and written eagerly, so arbitrarily long runs
/// trace in constant memory. Write errors set [`JsonlSink::errored`]
/// rather than panicking inside the simulator loop.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    w: W,
    /// Events successfully written.
    pub written: u64,
    /// Whether any write failed (output is truncated/unusable).
    pub errored: bool,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A sink streaming to `w`.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            written: 0,
            errored: false,
        }
    }

    /// Flush and recover the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.errored {
            return;
        }
        match writeln!(self.w, "{}", ev.to_json()) {
            Ok(()) => self.written += 1,
            Err(_) => self.errored = true,
        }
    }
}

// Chrome trace-event thread lanes, one per subsystem.
const TID_REGIONS: u32 = 0;
const TID_SB: u32 = 1;
const TID_STALLS: u32 = 2;
const TID_FAULTS: u32 = 3;
const TID_MEM: u32 = 4;

/// An exporter producing Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load).
///
/// The stream is buffered during the run and rendered on demand:
///
/// * **regions** lane — one complete (`"X"`) span per region instance,
///   from boundary commit to verification; spans cut short by a recovery
///   are closed at the recovery cycle and tagged `squashed`.
/// * **store buffer** lane — an occupancy counter track plus quarantine /
///   release instants.
/// * **stalls** lane — one span per pipeline stall, named by cause.
/// * **faults** lane — strike, detection, and recovery instants joined by
///   flow arrows (`"s"`/`"t"`/`"f"`), so the strike→detection→recovery
///   arc reads as one arrow chain on the timeline.
/// * **memory** lane — cache writebacks and fast releases.
///
/// One simulated cycle maps to one microsecond of trace time.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// An empty exporter.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// The buffered raw events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Render the buffered stream as a Chrome trace-event JSON document.
    pub fn render(&self) -> String {
        let mut out: Vec<String> = Vec::with_capacity(self.events.len() + 8);
        out.push(meta_json("process_name", None, "turnpike-sim"));
        for (tid, name) in [
            (TID_REGIONS, "regions"),
            (TID_SB, "store buffer"),
            (TID_STALLS, "stalls"),
            (TID_FAULTS, "faults"),
            (TID_MEM, "memory"),
        ] {
            out.push(meta_json("thread_name", Some(tid), name));
        }

        let max_cycle = self.events.iter().map(TraceEvent::cycle).max().unwrap_or(0);
        // Open region spans: (seq, start cycle), insertion-ordered.
        let mut open: Vec<(u64, u64)> = Vec::new();
        let mut flow = 0u64; // last strike's flow-arc id
        let mut flow_open = false;
        let (mut clq_hits, mut clq_misses) = (0u64, 0u64);
        for ev in &self.events {
            let c = ev.cycle();
            match *ev {
                TraceEvent::RegionStart { seq, .. } => open.push((seq, c)),
                TraceEvent::RegionVerified { seq, .. } => {
                    if let Some(i) = open.iter().position(|&(s, _)| s == seq) {
                        let (_, start) = open.remove(i);
                        out.push(span_json(
                            &format!("region {seq}"),
                            TID_REGIONS,
                            start,
                            c.saturating_sub(start),
                            &format!("\"seq\":{seq},\"state\":\"verified\""),
                        ));
                    }
                }
                TraceEvent::Recovery {
                    target_seq,
                    resume_pc,
                    ..
                } => {
                    // Every open (unverified) instance dies with the
                    // recovery; the target restarts from the recovery
                    // cycle.
                    for (seq, start) in open.drain(..) {
                        out.push(span_json(
                            &format!("region {seq}"),
                            TID_REGIONS,
                            start,
                            c.saturating_sub(start),
                            &format!("\"seq\":{seq},\"state\":\"squashed\""),
                        ));
                    }
                    open.push((target_seq, c));
                    out.push(span_json(
                        "recovery",
                        TID_FAULTS,
                        c,
                        1,
                        &format!("\"target_seq\":{target_seq},\"resume_pc\":{resume_pc}"),
                    ));
                    if flow_open {
                        out.push(flow_json("f", flow, c));
                        flow_open = false;
                    }
                }
                TraceEvent::Strike { .. } => {
                    flow += 1;
                    flow_open = true;
                    out.push(span_json("strike", TID_FAULTS, c, 1, ""));
                    out.push(flow_json("s", flow, c));
                }
                TraceEvent::Detection { .. } => {
                    out.push(span_json("detection", TID_FAULTS, c, 1, ""));
                    if flow_open {
                        out.push(flow_json("t", flow, c));
                    }
                }
                TraceEvent::SbOccupancy { entries, .. } => {
                    out.push(format!(
                        "{{\"ph\":\"C\",\"pid\":0,\"tid\":{TID_SB},\"ts\":{c},\
                         \"name\":\"sb occupancy\",\"args\":{{\"entries\":{entries}}}}}"
                    ));
                }
                TraceEvent::Quarantined { seq, .. } => {
                    out.push(instant_json(
                        "quarantine",
                        TID_SB,
                        c,
                        &format!("\"seq\":{seq}"),
                    ));
                }
                TraceEvent::SbRelease { seq, .. } => {
                    out.push(instant_json(
                        "sb release",
                        TID_SB,
                        c,
                        &format!("\"seq\":{seq}"),
                    ));
                }
                TraceEvent::Stall {
                    pc, kind, cycles, ..
                } => {
                    out.push(span_json(
                        &format!("stall: {}", kind.name()),
                        TID_STALLS,
                        c,
                        cycles.max(1),
                        &format!("\"pc\":{pc},\"cycles\":{cycles}"),
                    ));
                }
                TraceEvent::ClqCheck { war_free, .. } => {
                    if war_free {
                        clq_hits += 1;
                    } else {
                        clq_misses += 1;
                    }
                    out.push(format!(
                        "{{\"ph\":\"C\",\"pid\":0,\"tid\":{TID_MEM},\"ts\":{c},\
                         \"name\":\"clq\",\"args\":{{\"hits\":{clq_hits},\
                         \"misses\":{clq_misses}}}}}"
                    ));
                }
                TraceEvent::CacheWriteback { addr, seq, .. } => {
                    out.push(instant_json(
                        "writeback",
                        TID_MEM,
                        c,
                        &format!("\"addr\":{addr},\"seq\":{seq}"),
                    ));
                }
                TraceEvent::WarFreeRelease { addr, .. } => {
                    out.push(instant_json(
                        "war-free release",
                        TID_MEM,
                        c,
                        &format!("\"addr\":{addr}"),
                    ));
                }
                TraceEvent::ColoredRelease { reg, color, .. } => {
                    out.push(instant_json(
                        "colored release",
                        TID_MEM,
                        c,
                        &format!("\"reg\":{reg},\"color\":{color}"),
                    ));
                }
            }
        }
        // Regions still open at end of stream never verified in-window.
        for (seq, start) in open {
            out.push(span_json(
                &format!("region {seq}"),
                TID_REGIONS,
                start,
                max_cycle.saturating_sub(start).max(1),
                &format!("\"seq\":{seq},\"state\":\"unverified\""),
            ));
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", out.join(",\n"))
    }
}

impl TraceSink for ChromeTrace {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

fn meta_json(kind: &str, tid: Option<u32>, name: &str) -> String {
    let tid = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
    format!(
        "{{\"ph\":\"M\",\"pid\":0,{tid}\"name\":\"{kind}\",\
         \"args\":{{\"name\":\"{name}\"}}}}"
    )
}

fn span_json(name: &str, tid: u32, ts: u64, dur: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
         \"name\":\"{name}\",\"args\":{{{args}}}}}"
    )
}

fn instant_json(name: &str, tid: u32, ts: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
         \"name\":\"{name}\",\"args\":{{{args}}}}}"
    )
}

fn flow_json(ph: &str, id: u64, ts: u64) -> String {
    let bind = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
    format!(
        "{{\"ph\":\"{ph}\",\"cat\":\"fault\",\"id\":{id},\"pid\":0,\
         \"tid\":{TID_FAULTS},\"ts\":{ts},\"name\":\"fault arc\"{bind}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_cap_drops_oldest() {
        let mut t = Trace::new(2);
        t.push(TraceEvent::Strike { cycle: 1 });
        t.push(TraceEvent::Detection { cycle: 2 });
        t.push(TraceEvent::Strike { cycle: 3 }); // evicts cycle 1
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 1);
        // Ring semantics: the *newest* events are retained.
        assert_eq!(t.events()[0].cycle(), 2);
        assert_eq!(t.events()[1].cycle(), 3);
        t.push(TraceEvent::Detection { cycle: 4 });
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events()[0].cycle(), 3);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Trace::default();
        t.push(TraceEvent::RegionStart { cycle: 5, seq: 1 });
        t.push(TraceEvent::Detection { cycle: 9 });
        t.push(TraceEvent::RegionStart { cycle: 12, seq: 2 });
        let starts: Vec<_> = t
            .filter(|e| matches!(e, TraceEvent::RegionStart { .. }))
            .collect();
        assert_eq!(starts.len(), 2);
    }

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RegionStart { cycle: 1, seq: 0 },
            TraceEvent::RegionVerified { cycle: 2, seq: 0 },
            TraceEvent::WarFreeRelease { cycle: 3, addr: 8 },
            TraceEvent::ColoredRelease {
                cycle: 4,
                reg: 1,
                color: 2,
            },
            TraceEvent::Quarantined { cycle: 5, seq: 0 },
            TraceEvent::SbRelease { cycle: 6, seq: 0 },
            TraceEvent::Strike { cycle: 7 },
            TraceEvent::Detection { cycle: 8 },
            TraceEvent::Recovery {
                cycle: 9,
                target_seq: 0,
                resume_pc: 0,
            },
            TraceEvent::SbOccupancy {
                cycle: 10,
                entries: 3,
                seq: 1,
            },
            TraceEvent::ClqCheck {
                cycle: 11,
                addr: 16,
                seq: 1,
                war_free: true,
            },
            TraceEvent::CacheWriteback {
                cycle: 12,
                addr: 24,
                seq: 1,
            },
            TraceEvent::Stall {
                cycle: 13,
                pc: 4,
                seq: 1,
                kind: StallKind::SbFull,
                cycles: 2,
            },
        ]
    }

    #[test]
    fn cycles_are_accessible_for_all_variants() {
        for (i, e) in all_variants().iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
        }
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let mut kinds = std::collections::HashSet::new();
        for e in all_variants() {
            let line = e.to_json();
            assert!(
                line.starts_with(&format!("{{\"cycle\":{}", e.cycle())),
                "{line}"
            );
            assert!(
                line.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
            assert!(kinds.insert(e.kind()), "duplicate kind {}", e.kind());
        }
        assert_eq!(
            TraceEvent::ClqCheck {
                cycle: 11,
                addr: 16,
                seq: 1,
                war_free: true
            }
            .to_json(),
            "{\"cycle\":11,\"kind\":\"clq_check\",\"addr\":16,\"seq\":1,\"war_free\":true}"
        );
    }

    #[test]
    fn jsonl_sink_streams_and_counts() {
        let mut sink = JsonlSink::new(Vec::new());
        for e in all_variants() {
            sink.record(&e);
        }
        assert_eq!(sink.written, all_variants().len() as u64);
        assert!(!sink.errored);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), all_variants().len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_trace_renders_lifecycle_spans_and_arcs() {
        let mut ct = ChromeTrace::new();
        for e in [
            TraceEvent::RegionStart { cycle: 10, seq: 1 },
            TraceEvent::Strike { cycle: 15 },
            TraceEvent::Detection { cycle: 20 },
            TraceEvent::Recovery {
                cycle: 21,
                target_seq: 1,
                resume_pc: 3,
            },
            TraceEvent::RegionVerified { cycle: 40, seq: 1 },
            TraceEvent::SbOccupancy {
                cycle: 12,
                entries: 2,
                seq: 1,
            },
        ] {
            ct.record(&e);
        }
        let json = ct.render();
        assert!(json.starts_with("{\"traceEvents\":["));
        // Region 1 is squashed by the recovery, then reopens and verifies.
        assert!(json.contains("\"state\":\"squashed\""), "{json}");
        assert!(json.contains("\"state\":\"verified\""), "{json}");
        // The fault arc is a flow: start, step, finish.
        for ph in ["\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\""] {
            assert!(json.contains(ph), "missing {ph}");
        }
        assert!(json.contains("sb occupancy"));
        // Every emitted object parses shallowly: balanced braces per line.
        for line in json.lines().filter(|l| l.contains("\"ph\"")) {
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "{line}");
        }
    }
}
