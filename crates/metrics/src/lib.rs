//! Unified metrics spine for the Turnpike reproduction.
//!
//! Every layer of the stack — compiler passes, the cycle-level simulator,
//! the recovery controller, fault campaigns — records its statistics into
//! one shared registry type, [`MetricSet`], keyed by the closed enums
//! [`Counter`] (integer event counts) and [`Gauge`] (floating-point point
//! samples). The evaluation harness reads figures out of the same registry
//! by key instead of reaching into per-layer stat structs.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap in the hot loop.** Keys are dense enum discriminants and a
//!    [`MetricSet`] is a pair of fixed arrays, so [`MetricSet::add`] is an
//!    indexed integer add — no hashing, no allocation, no locks.
//! 2. **Mergeable across runs.** [`MetricSet::merge`] folds one run's
//!    metrics into an accumulator under each key's [`MergePolicy`]
//!    (campaign reports are exactly this fold), and
//!    [`MetricSet::delta_since`] recovers per-phase contributions (the
//!    pass manager uses it for per-pass attribution).
//! 3. **One schema.** The key enums are the single catalogue of everything
//!    the stack measures; adding a metric means adding a variant here, and
//!    every consumer can enumerate the catalogue via [`Counter::ALL`].

use std::fmt;

/// How two samples of the same counter combine under [`MetricSet::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Event counts: occurrences add up across runs/phases.
    Sum,
    /// High-water marks: the combined value is the larger observation.
    Max,
}

macro_rules! counters {
    ($( $(#[$meta:meta])* $variant:ident => ($name:literal, $policy:ident), )+) => {
        /// Integer metric keys, the closed catalogue of event counters the
        /// stack records. Dotted names namespace the producing layer
        /// (`compile.*`, `sim.*`, `sim.clq.*`, `sim.cache.*`, `campaign.*`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Counter {
            $( $(#[$meta])* $variant, )+
        }

        impl Counter {
            /// Every counter key, in declaration order.
            pub const ALL: &'static [Counter] = &[ $(Counter::$variant,)+ ];

            /// The dotted string name (stable; used for display and JSON).
            pub fn name(self) -> &'static str {
                match self { $(Counter::$variant => $name,)+ }
            }

            /// How samples of this counter combine across runs.
            pub fn merge_policy(self) -> MergePolicy {
                match self { $(Counter::$variant => MergePolicy::$policy,)+ }
            }
        }
    };
}

counters! {
    // — compiler passes —
    /// Checkpoints present after eager insertion (before pruning/LICM).
    CkptsInserted => ("compile.ckpts_inserted", Sum),
    /// Checkpoints removed by optimal pruning.
    CkptsPruned => ("compile.ckpts_pruned", Sum),
    /// Net checkpoints removed by LICM loop-exit sinking.
    CkptsLicmRemoved => ("compile.ckpts_licm_removed", Sum),
    /// Spill stores emitted by register allocation.
    SpillStores => ("compile.spill_stores", Sum),
    /// Spill reload loads emitted by register allocation.
    SpillLoads => ("compile.spill_loads", Sum),
    /// Virtual registers spilled.
    SpilledVregs => ("compile.spilled_vregs", Sum),
    /// Loop induction variables merged away by LIVM.
    IvsMerged => ("compile.ivs_merged", Sum),
    /// Region boundaries in the final code.
    Boundaries => ("compile.boundaries", Sum),
    /// Extra boundary-splitting fixpoint iterations taken.
    SplitIterations => ("compile.split_iterations", Sum),
    /// Machine instructions in the final program.
    FinalInsts => ("compile.final_insts", Sum),
    /// Machine instructions of a resilience-free compile of the same
    /// function (the code-size denominator).
    BaselineInsts => ("compile.baseline_insts", Sum),

    // — simulator core —
    /// Total cycles (including the verification/drain tail).
    Cycles => ("sim.cycles", Sum),
    /// Dynamic instructions committed (recovery re-execution included).
    Insts => ("sim.insts", Sum),
    /// Cycles lost waiting for a free store buffer slot.
    StallSbFull => ("sim.stall.sb_full", Sum),
    /// Cycles lost waiting on register operands.
    StallDataHazard => ("sim.stall.data_hazard", Sum),
    /// Data-hazard cycles where the stalled instruction was a checkpoint.
    StallCkptHazard => ("sim.stall.ckpt_hazard", Sum),
    /// Cycles lost to the single memory port.
    StallMemPort => ("sim.stall.mem_port", Sum),
    /// Cycles lost waiting for RBB room at a boundary.
    StallRbbFull => ("sim.stall.rbb_full", Sum),
    /// Cycles spent in recovery (flush + recovery block execution).
    RecoveryCycles => ("sim.recovery_cycles", Sum),
    /// Dynamic loads.
    Loads => ("sim.loads", Sum),
    /// Dynamic regular stores.
    Stores => ("sim.stores", Sum),
    /// Dynamic checkpoint stores.
    Ckpts => ("sim.ckpts", Sum),
    /// Regular stores fast-released via the WAR-free path.
    WarFreeReleased => ("sim.war_free_released", Sum),
    /// Checkpoints fast-released via coloring.
    ColoredReleased => ("sim.colored_released", Sum),
    /// Stores (regular + checkpoint) quarantined in the SB.
    Quarantined => ("sim.quarantined", Sum),
    /// Region boundaries committed.
    RegionsCommitted => ("sim.boundaries", Sum),
    /// Errors detected (sensor or parity).
    Detections => ("sim.detections", Sum),
    /// Detections raised by register parity / hardened-path checks.
    ParityDetections => ("sim.parity_detections", Sum),
    /// Detections raised by the acoustic sensor (WCDL-bounded).
    SensorDetections => ("sim.sensor_detections", Sum),
    /// Recoveries executed by the recovery controller.
    Recoveries => ("sim.recoveries", Sum),
    /// Peak store-buffer occupancy.
    SbPeak => ("sim.sb_peak", Max),

    // — committed load queue —
    /// Regular stores checked against the CLQ.
    ClqStoresChecked => ("sim.clq.stores_checked", Sum),
    /// Stores proven WAR-free (fast released).
    ClqWarFree => ("sim.clq.war_free", Sum),
    /// Loads recorded in the CLQ.
    ClqLoadsRecorded => ("sim.clq.loads_recorded", Sum),
    /// CLQ overflows (compact design only).
    ClqOverflows => ("sim.clq.overflows", Sum),
    /// Sum of entry occupancy sampled at each load.
    ClqOccupancySum => ("sim.clq.occupancy_sum", Sum),
    /// Occupancy samples taken.
    ClqOccupancySamples => ("sim.clq.occupancy_samples", Sum),
    /// Peak CLQ entries populated.
    ClqPeakEntries => ("sim.clq.peak_entries", Max),

    // — cache hierarchy —
    /// L1 data cache hits.
    L1Hits => ("sim.cache.l1_hits", Sum),
    /// L1 data cache misses.
    L1Misses => ("sim.cache.l1_misses", Sum),
    /// L2 cache hits.
    L2Hits => ("sim.cache.l2_hits", Sum),
    /// L2 cache misses.
    L2Misses => ("sim.cache.l2_misses", Sum),

    // — fault campaigns —
    /// Injected runs executed.
    CampaignRuns => ("campaign.runs", Sum),
    /// Runs whose final state differed from the fault-free run (SDC).
    CampaignSdc => ("campaign.sdc", Sum),
    /// Strikes that landed at or after program completion (no effect).
    CampaignPostCompletion => ("campaign.post_completion", Sum),
}

/// Floating-point metric keys (point samples, not event counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Average dynamic instructions per region (paper Fig 26).
    AvgRegionInsts,
}

impl Gauge {
    /// Every gauge key, in declaration order.
    pub const ALL: &'static [Gauge] = &[Gauge::AvgRegionInsts];

    /// The dotted string name (stable; used for display and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::AvgRegionInsts => "sim.avg_region_insts",
        }
    }
}

/// Number of counter keys (array dimension of [`MetricSet`]).
pub const NUM_COUNTERS: usize = Counter::ALL.len();
/// Number of gauge keys (array dimension of [`MetricSet`]).
pub const NUM_GAUGES: usize = Gauge::ALL.len();

/// A dense registry holding one value per metric key.
///
/// This is the unit that flows through the stack: the pass manager hands
/// one to every compiler pass, the simulator exports its run totals as one,
/// campaigns fold per-run sets into one, and the figure generators read
/// them by key. Cloning and merging are fixed-size array operations.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    counters: [u64; NUM_COUNTERS],
    gauges: [f64; NUM_GAUGES],
    gauge_set: u32,
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet {
            counters: [0; NUM_COUNTERS],
            gauges: [0.0; NUM_GAUGES],
            gauge_set: 0,
        }
    }
}

impl MetricSet {
    /// An empty registry (all counters zero, no gauges set).
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Add `v` to a counter.
    #[inline]
    pub fn add(&mut self, key: Counter, v: u64) {
        self.counters[key as usize] += v;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, key: Counter) {
        self.add(key, 1);
    }

    /// Raise a high-water-mark counter to at least `v`.
    #[inline]
    pub fn record_peak(&mut self, key: Counter, v: u64) {
        let slot = &mut self.counters[key as usize];
        *slot = (*slot).max(v);
    }

    /// Read a counter.
    #[inline]
    pub fn counter(&self, key: Counter) -> u64 {
        self.counters[key as usize]
    }

    /// Set a gauge (overwrites any prior sample).
    #[inline]
    pub fn set_gauge(&mut self, key: Gauge, v: f64) {
        self.gauges[key as usize] = v;
        self.gauge_set |= 1 << key as u32;
    }

    /// Read a gauge; unset gauges read as `0.0`.
    #[inline]
    pub fn gauge(&self, key: Gauge) -> f64 {
        self.gauges[key as usize]
    }

    /// Whether a gauge has been set.
    pub fn has_gauge(&self, key: Gauge) -> bool {
        self.gauge_set & (1 << key as u32) != 0
    }

    /// Fold `other` into `self`: `Sum` counters add, `Max` counters take
    /// the larger observation, and gauges set in `other` overwrite (last
    /// writer wins — merge-order-sensitive, so accumulate gauges only when
    /// one producer owns the key).
    pub fn merge(&mut self, other: &MetricSet) {
        for &key in Counter::ALL {
            let i = key as usize;
            match key.merge_policy() {
                MergePolicy::Sum => self.counters[i] += other.counters[i],
                MergePolicy::Max => self.counters[i] = self.counters[i].max(other.counters[i]),
            }
        }
        for &key in Gauge::ALL {
            if other.has_gauge(key) {
                self.set_gauge(key, other.gauge(key));
            }
        }
    }

    /// The contribution made since `before` was captured: `Sum` counters
    /// subtract, `Max` counters keep the current high-water mark, and
    /// gauges carry over where set. The pass manager uses this for
    /// per-pass attribution, so for `Sum` keys
    /// `before + delta == self` holds field-wise.
    pub fn delta_since(&self, before: &MetricSet) -> MetricSet {
        let mut d = MetricSet::new();
        for &key in Counter::ALL {
            let i = key as usize;
            d.counters[i] = match key.merge_policy() {
                MergePolicy::Sum => self.counters[i].saturating_sub(before.counters[i]),
                MergePolicy::Max => self.counters[i],
            };
        }
        for &key in Gauge::ALL {
            if self.has_gauge(key) {
                d.set_gauge(key, self.gauge(key));
            }
        }
        d
    }

    /// Whether every counter is zero and no gauge is set.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.gauge_set == 0
    }

    /// Iterate the nonzero counters as `(key, value)`.
    pub fn nonzero_counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .filter(|&&k| self.counter(k) != 0)
            .map(|&k| (k, self.counter(k)))
    }

    // — derived metrics —
    //
    // The ratio formulas below are the single definition the whole stack
    // (stat displays, figure generators) uses; each guards its denominator
    // and divides in the same order so results are bit-stable.

    /// `num / den` as `f64`, `0.0` when the denominator is zero.
    fn ratio(&self, num: Counter, den: Counter) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.ratio(Counter::Insts, Counter::Cycles)
    }

    /// Fraction of dynamic instructions that are checkpoints (Fig 4).
    pub fn ckpt_ratio(&self) -> f64 {
        self.ratio(Counter::Ckpts, Counter::Insts)
    }

    /// Total dynamic stores including checkpoints.
    pub fn all_stores(&self) -> u64 {
        self.counter(Counter::Stores) + self.counter(Counter::Ckpts)
    }

    /// Fraction of all stores released without verification
    /// (WAR-free + colored).
    pub fn bypass_ratio(&self) -> f64 {
        let all = self.all_stores();
        if all == 0 {
            0.0
        } else {
            (self.counter(Counter::WarFreeReleased) + self.counter(Counter::ColoredReleased)) as f64
                / all as f64
        }
    }

    /// Average CLQ entries populated over the run (Fig 24).
    pub fn clq_avg_entries(&self) -> f64 {
        self.ratio(Counter::ClqOccupancySum, Counter::ClqOccupancySamples)
    }

    /// Fraction of CLQ-checked stores proven WAR-free (Figs 15/24).
    pub fn clq_war_free_ratio(&self) -> f64 {
        self.ratio(Counter::ClqWarFree, Counter::ClqStoresChecked)
    }

    /// Code-size increase of the resilient binary over the baseline, as a
    /// fraction (e.g. `0.05` = 5%). Zero when baseline size is unknown.
    pub fn code_size_increase(&self) -> f64 {
        let base = self.counter(Counter::BaselineInsts);
        if base == 0 {
            0.0
        } else {
            self.counter(Counter::FinalInsts) as f64 / base as f64 - 1.0
        }
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (key, v) in self.nonzero_counters() {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{} = {v}", key.name())?;
            first = false;
        }
        for &key in Gauge::ALL {
            if self.has_gauge(key) {
                if !first {
                    writeln!(f)?;
                }
                write!(f, "{} = {}", key.name(), self.gauge(key))?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.add(Counter::Cycles, 10);
        m.inc(Counter::Cycles);
        assert_eq!(m.counter(Counter::Cycles), 11);
        assert_eq!(m.counter(Counter::Insts), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn peaks_take_max() {
        let mut m = MetricSet::new();
        m.record_peak(Counter::SbPeak, 3);
        m.record_peak(Counter::SbPeak, 2);
        assert_eq!(m.counter(Counter::SbPeak), 3);
    }

    #[test]
    fn gauges_track_set_state() {
        let mut m = MetricSet::new();
        assert!(!m.has_gauge(Gauge::AvgRegionInsts));
        assert_eq!(m.gauge(Gauge::AvgRegionInsts), 0.0);
        m.set_gauge(Gauge::AvgRegionInsts, 12.5);
        assert!(m.has_gauge(Gauge::AvgRegionInsts));
        assert_eq!(m.gauge(Gauge::AvgRegionInsts), 12.5);
    }

    #[test]
    fn merge_respects_policies() {
        let mut a = MetricSet::new();
        a.add(Counter::Cycles, 100);
        a.record_peak(Counter::SbPeak, 4);
        let mut b = MetricSet::new();
        b.add(Counter::Cycles, 50);
        b.record_peak(Counter::SbPeak, 2);
        b.set_gauge(Gauge::AvgRegionInsts, 7.0);
        a.merge(&b);
        assert_eq!(a.counter(Counter::Cycles), 150);
        assert_eq!(a.counter(Counter::SbPeak), 4);
        assert_eq!(a.gauge(Gauge::AvgRegionInsts), 7.0);
    }

    #[test]
    fn delta_recovers_contributions() {
        let mut before = MetricSet::new();
        before.add(Counter::CkptsInserted, 5);
        let mut after = before.clone();
        after.add(Counter::CkptsInserted, 3);
        after.add(Counter::SpillStores, 2);
        let d = after.delta_since(&before);
        assert_eq!(d.counter(Counter::CkptsInserted), 3);
        assert_eq!(d.counter(Counter::SpillStores), 2);
        let mut sum = before.clone();
        sum.merge(&d);
        assert_eq!(sum.counter(Counter::CkptsInserted), 8);
    }

    #[test]
    fn derived_ratios_match_fixed_field_formulas() {
        let mut m = MetricSet::new();
        m.add(Counter::Cycles, 100);
        m.add(Counter::Insts, 150);
        m.add(Counter::Ckpts, 30);
        m.add(Counter::Stores, 30);
        m.add(Counter::WarFreeReleased, 15);
        m.add(Counter::ColoredReleased, 15);
        assert!((m.ipc() - 1.5).abs() < 1e-12);
        assert!((m.ckpt_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(m.all_stores(), 60);
        assert!((m.bypass_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(MetricSet::new().ipc(), 0.0);
        assert_eq!(MetricSet::new().code_size_increase(), 0.0);
        m.add(Counter::BaselineInsts, 100);
        m.add(Counter::FinalInsts, 105);
        assert!((m.code_size_increase() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn names_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for &k in Counter::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert!(k.name().contains('.'), "{} lacks a namespace", k.name());
        }
        for &g in Gauge::ALL {
            assert!(seen.insert(g.name()), "duplicate name {}", g.name());
        }
    }

    #[test]
    fn display_lists_nonzero_entries() {
        let mut m = MetricSet::new();
        assert_eq!(m.to_string(), "(empty)");
        m.add(Counter::Cycles, 7);
        m.set_gauge(Gauge::AvgRegionInsts, 1.5);
        let s = m.to_string();
        assert!(s.contains("sim.cycles = 7"));
        assert!(s.contains("sim.avg_region_insts = 1.5"));
    }
}
