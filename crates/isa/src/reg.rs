//! Physical registers and machine operands.

use std::error::Error;
use std::fmt;

/// Number of architectural integer registers (matching a 32-register
/// embedded RISC register file, as in the paper's Cortex-A53 target).
pub const NUM_PHYS_REGS: u8 = 32;

/// A physical (architectural) register, `r0`..`r31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(u8);

/// Error returned when constructing a [`PhysReg`] out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegParseError(pub u8);

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "physical register index {} out of range", self.0)
    }
}

impl Error for RegParseError {}

impl PhysReg {
    /// Construct a register, validating the index.
    ///
    /// # Errors
    ///
    /// Returns [`RegParseError`] if `index >= NUM_PHYS_REGS`.
    pub fn new(index: u8) -> Result<Self, RegParseError> {
        if index < NUM_PHYS_REGS {
            Ok(PhysReg(index))
        } else {
            Err(RegParseError(index))
        }
    }

    /// Construct without validation. Only for trusted constants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` is out of range.
    pub fn new_unchecked(index: u8) -> Self {
        debug_assert!(index < NUM_PHYS_REGS);
        PhysReg(index)
    }

    /// Register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw index as `u8`.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Iterate over all physical registers.
    pub fn all() -> impl Iterator<Item = PhysReg> {
        (0..NUM_PHYS_REGS).map(PhysReg)
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A machine operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MOperand {
    /// Register read.
    Reg(PhysReg),
    /// Signed immediate.
    Imm(i64),
}

impl MOperand {
    /// The register read, if any.
    pub fn reg(self) -> Option<PhysReg> {
        match self {
            MOperand::Reg(r) => Some(r),
            MOperand::Imm(_) => None,
        }
    }

    /// The immediate value, if constant.
    pub fn imm(self) -> Option<i64> {
        match self {
            MOperand::Imm(v) => Some(v),
            MOperand::Reg(_) => None,
        }
    }
}

impl fmt::Display for MOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MOperand::Reg(r) => write!(f, "{r}"),
            MOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<PhysReg> for MOperand {
    fn from(r: PhysReg) -> Self {
        MOperand::Reg(r)
    }
}

impl From<i64> for MOperand {
    fn from(v: i64) -> Self {
        MOperand::Imm(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(PhysReg::new(0).is_ok());
        assert!(PhysReg::new(31).is_ok());
        let err = PhysReg::new(32).unwrap_err();
        assert_eq!(err, RegParseError(32));
        assert!(err.to_string().contains("32"));
    }

    #[test]
    fn all_covers_register_file() {
        let v: Vec<_> = PhysReg::all().collect();
        assert_eq!(v.len(), NUM_PHYS_REGS as usize);
        assert_eq!(v[0].index(), 0);
        assert_eq!(v[31].raw(), 31);
    }

    #[test]
    fn operand_accessors_and_display() {
        let r = PhysReg::new(5).unwrap();
        assert_eq!(MOperand::from(r).reg(), Some(r));
        assert_eq!(MOperand::from(7i64).imm(), Some(7));
        assert_eq!(MOperand::Reg(r).to_string(), "r5");
        assert_eq!(MOperand::Imm(-3).to_string(), "#-3");
    }
}
