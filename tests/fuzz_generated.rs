//! Stress the full stack with generated random kernels: every seed, under
//! every scheme, must match the interpreter and survive fault injection.

use std::collections::BTreeMap;
use turnpike::compiler::SPILL_BASE;
use turnpike::ir::interp;
use turnpike::resilience::{fault_campaign, run_kernel, CampaignConfig, RunSpec, Scheme};
use turnpike::workloads::{generate, GeneratorConfig};

fn data_only(mem: &BTreeMap<u64, i64>) -> BTreeMap<u64, i64> {
    mem.iter()
        .filter(|(a, _)| **a < SPILL_BASE)
        .map(|(a, v)| (*a, *v))
        .collect()
}

#[test]
fn generated_kernels_are_equivalent_under_all_schemes() {
    for seed in 0..10u64 {
        let cfg = GeneratorConfig {
            loops: 1 + (seed % 3) as usize,
            trip: 20 + (seed * 7 % 30) as i64,
            body_ops: 8 + (seed % 10) as usize,
            store_density: 0.1 + (seed % 4) as f64 * 0.15,
            load_density: 0.25,
            accumulators: 2 + (seed % 3) as usize,
            data_words: 32,
        };
        let p = generate(seed, &cfg);
        let golden = interp::golden(&p).unwrap();
        for scheme in [
            Scheme::Baseline,
            Scheme::Turnstile,
            Scheme::FastRelease,
            Scheme::Turnpike,
        ] {
            let run = run_kernel(&p, &RunSpec::new(scheme))
                .unwrap_or_else(|e| panic!("seed {seed} {scheme:?}: {e}"));
            assert_eq!(run.outcome.ret, golden.0, "seed {seed} {scheme:?}");
            assert_eq!(
                data_only(&run.outcome.memory),
                data_only(&golden.1),
                "seed {seed} {scheme:?}"
            );
        }
    }
}

#[test]
fn generated_kernels_survive_fault_campaigns() {
    for seed in 0..6u64 {
        let p = generate(seed, &GeneratorConfig::default());
        let report = fault_campaign(
            &p,
            &RunSpec::new(Scheme::Turnpike),
            &CampaignConfig {
                runs: 6,
                seed: seed * 31 + 1,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.sdc_free(), "seed {seed}: {report:?}");
    }
}

#[test]
fn store_density_extremes_compile_under_tight_sb() {
    for density in [0.0, 0.5, 0.9] {
        let cfg = GeneratorConfig {
            store_density: density,
            ..GeneratorConfig::default()
        };
        let p = generate(42, &cfg);
        for sb in [2u32, 4] {
            let run = run_kernel(&p, &RunSpec::new(Scheme::Turnstile).with_sb(sb));
            assert!(run.is_ok(), "density {density} SB {sb}: {run:?}");
        }
    }
}
