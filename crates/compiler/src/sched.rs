//! Checkpoint-aware list scheduling (paper §4.2).
//!
//! Eager checkpointing creates read-after-write pairs — a register update
//! immediately followed by its checkpoint store — that stall an in-order
//! pipeline for the update's full latency (worst for loads). Out-of-order
//! cores hide this; in-order cores need the compiler to hoist independent
//! instructions into the gap.
//!
//! The scheduler works per *segment* (the run of instructions between region
//! boundaries inside a block — boundaries are scheduling barriers so region
//! store counts are preserved). It builds a dependence DAG (register
//! RAW/WAR/WAW; conservative memory ordering with no alias analysis:
//! store–store, load–store, and store–load edges; checkpoint stores only
//! order against checkpoints of the same register since the checkpoint
//! address space is disjoint from data memory), then emits greedily by
//! earliest-start time with critical-path priority.

use turnpike_ir::{Function, Inst, Reg};

/// Latency used for dependence edges, mirroring the simulator's L1-hit path.
fn latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Bin { op, .. } => op.latency(),
        Inst::Load { .. } => 2,
        _ => 1,
    }
}

/// Schedule every segment of every block in place. Returns the number of
/// instructions that changed position (a cheap effectiveness metric).
pub fn schedule(f: &mut Function) -> u32 {
    let mut moved = 0;
    for b in &mut f.blocks {
        let insts = std::mem::take(&mut b.insts);
        let mut new: Vec<Inst> = Vec::with_capacity(insts.len());
        let mut seg: Vec<Inst> = Vec::new();
        for inst in insts {
            if inst.is_boundary() {
                moved += schedule_segment(&mut seg, &mut new);
                new.push(inst);
            } else {
                seg.push(inst);
            }
        }
        moved += schedule_segment(&mut seg, &mut new);
        b.insts = new;
    }
    moved
}

/// Schedule one segment, appending the new order to `out`.
fn schedule_segment(seg: &mut Vec<Inst>, out: &mut Vec<Inst>) -> u32 {
    let n = seg.len();
    if n < 3 {
        out.append(seg);
        return 0;
    }
    // Build dependence edges: preds[i] = list of (dep index, edge latency).
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add_edge = |from: usize,
                    to: usize,
                    lat: u32,
                    preds: &mut Vec<Vec<(usize, u32)>>,
                    succs: &mut Vec<Vec<usize>>| {
        preds[to].push((from, lat));
        succs[from].push(to);
    };
    let mut last_def: Vec<Option<usize>> = vec![None; 64];
    let mut last_uses: Vec<Vec<usize>> = vec![Vec::new(); 64];
    let reg_slot = |r: Reg| (r.0 as usize).min(63);
    let mut last_data_store: Option<usize> = None;
    let mut data_loads_since_store: Vec<usize> = Vec::new();
    let mut last_ckpt_of: Vec<Option<usize>> = vec![None; 64];

    for (i, inst) in seg.iter().enumerate() {
        // Register dependences.
        for u in inst.uses() {
            if let Some(d) = last_def[reg_slot(u)] {
                add_edge(d, i, latency(&seg[d]), &mut preds, &mut succs);
            }
        }
        if let Some(d) = inst.def() {
            let s = reg_slot(d);
            if let Some(prev) = last_def[s] {
                add_edge(prev, i, 1, &mut preds, &mut succs); // WAW
            }
            for &u in &last_uses[s] {
                if u != i {
                    add_edge(u, i, 1, &mut preds, &mut succs); // WAR
                }
            }
            last_uses[s].clear();
            last_def[s] = Some(i);
        }
        for u in inst.uses() {
            last_uses[reg_slot(u)].push(i);
        }
        // Memory ordering.
        match inst {
            Inst::Load { .. } => {
                if let Some(s) = last_data_store {
                    add_edge(s, i, 1, &mut preds, &mut succs);
                }
                data_loads_since_store.push(i);
            }
            Inst::Store { .. } => {
                if let Some(s) = last_data_store {
                    add_edge(s, i, 1, &mut preds, &mut succs);
                }
                for &l in &data_loads_since_store {
                    add_edge(l, i, 1, &mut preds, &mut succs);
                }
                data_loads_since_store.clear();
                last_data_store = Some(i);
            }
            Inst::Ckpt { reg } => {
                let s = reg_slot(*reg);
                if let Some(c) = last_ckpt_of[s] {
                    add_edge(c, i, 1, &mut preds, &mut succs);
                }
                last_ckpt_of[s] = Some(i);
            }
            _ => {}
        }
    }

    // Critical-path heights.
    let mut height = vec![1u32; n];
    for i in (0..n).rev() {
        for &s in &succs[i] {
            height[i] = height[i].max(1 + height[s]);
        }
    }

    // Greedy emission by earliest start time.
    let mut pred_left: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut finish = vec![0u32; n]; // finish cycle of emitted insts
    let mut emitted = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut t: u32 = 0;
    while order.len() < n {
        // Earliest start of each ready instruction.
        let mut best: Option<(usize, u32)> = None; // (idx, est)
        let mut min_est = u32::MAX;
        for i in 0..n {
            if emitted[i] || pred_left[i] != 0 {
                continue;
            }
            let est = preds[i]
                .iter()
                .map(|&(p, lat)| finish[p].saturating_add(lat).saturating_sub(1))
                .max()
                .unwrap_or(0);
            min_est = min_est.min(est);
            let startable = est <= t;
            match best {
                _ if !startable => {}
                None => best = Some((i, est)),
                Some((bi, _)) => {
                    if (height[i], std::cmp::Reverse(i)) > (height[bi], std::cmp::Reverse(bi)) {
                        best = Some((i, est));
                    }
                }
            }
        }
        match best {
            Some((i, _)) => {
                emitted[i] = true;
                finish[i] = t + latency(&seg[i]);
                for &s in &succs[i] {
                    pred_left[s] -= 1;
                }
                order.push(i);
                t += 1;
            }
            None => {
                t = t.max(min_est);
            }
        }
    }

    let moved = order
        .iter()
        .enumerate()
        .filter(|&(pos, &i)| pos != i)
        .count() as u32;
    for &i in &order {
        out.push(seg[i]);
    }
    seg.clear();
    moved
}

/// Checkpoint-aware instruction scheduling as a pipeline
/// [`crate::pass::Pass`].
pub struct SchedPass;

impl crate::pass::Pass for SchedPass {
    fn name(&self) -> &'static str {
        "sched"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        _cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        schedule(&mut prog.func);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{interp, DataSegment, FunctionBuilder, Operand, Program};

    /// The paper's Figure 6/11 shape: load; ckpt(load); two independent ALU
    /// ops. Scheduling must hoist the ALU ops between the load and the ckpt.
    #[test]
    fn separates_load_from_checkpoint() {
        let mut b = FunctionBuilder::new("fig11");
        let r6 = b.fresh_reg();
        let r5 = b.fresh_reg();
        let r4 = b.fresh_reg();
        b.mov(r5, 1i64);
        b.mov(r4, 2i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.load_abs(r6, 0x1000);
        b.inst(Inst::Ckpt { reg: r6 });
        b.add(r5, r5, 1i64);
        b.shl(r4, r4, 2i64);
        b.inst(Inst::RegionBoundary { id: 2 });
        b.ret(Some(Operand::Reg(r6)));
        let mut f = b.finish().unwrap();
        schedule(&mut f);
        let insts = &f.blocks[0].insts;
        let load = insts
            .iter()
            .position(|i| matches!(i, Inst::Load { .. }))
            .unwrap();
        let ckpt = insts
            .iter()
            .position(|i| matches!(i, Inst::Ckpt { reg } if reg.0 == 0))
            .unwrap();
        assert!(
            ckpt > load + 1,
            "independent work should fill the load-to-ckpt gap: {insts:?}"
        );
    }

    #[test]
    fn preserves_semantics_on_memory_heavy_code() {
        let mut b = FunctionBuilder::new("mem");
        let base = b.param();
        let x = b.fresh_reg();
        let y = b.fresh_reg();
        let z = b.fresh_reg();
        b.store(7i64, base, 0);
        b.load(x, base, 0);
        b.store(9i64, base, 0); // overwrites
        b.load(y, base, 0);
        b.add(z, x, Operand::Reg(y));
        b.ret(Some(Operand::Reg(z)));
        let f = b.finish().unwrap();
        let p = Program::with_params(f, DataSegment::zeroed(0x1000, 1), vec![0x1000]);
        let golden = interp::golden(&p).unwrap();
        let mut q = p.clone();
        schedule(&mut q.func);
        assert_eq!(interp::golden(&q).unwrap(), golden);
        assert_eq!(golden.0, Some(16));
    }

    #[test]
    fn boundaries_are_barriers() {
        let mut b = FunctionBuilder::new("bar");
        let x = b.fresh_reg();
        b.mov(x, 1i64);
        b.store_abs(x, 0x1000);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.store_abs(x, 0x1008);
        b.ret(None);
        let mut f = b.finish().unwrap();
        schedule(&mut f);
        let insts = &f.blocks[0].insts;
        let bpos = insts.iter().position(|i| i.is_boundary()).unwrap();
        let stores: Vec<usize> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_store())
            .map(|(k, _)| k)
            .collect();
        assert!(stores[0] < bpos && stores[1] > bpos);
    }

    #[test]
    fn short_segments_untouched() {
        let mut b = FunctionBuilder::new("short");
        let x = b.fresh_reg();
        b.mov(x, 1i64);
        b.ret(Some(Operand::Reg(x)));
        let mut f = b.finish().unwrap();
        assert_eq!(schedule(&mut f), 0);
    }

    /// Randomized differential test: scheduling never changes results.
    #[test]
    fn random_programs_schedule_equivalently() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = FunctionBuilder::new("rnd");
            let base = b.param();
            let regs: Vec<_> = (0..6).map(|_| b.fresh_reg()).collect();
            for &r in &regs {
                b.mov(r, rng.gen_range(-8i64..8));
            }
            for _ in 0..30 {
                match rng.gen_range(0..5) {
                    0 => {
                        let d = regs[rng.gen_range(0..regs.len())];
                        let a = regs[rng.gen_range(0..regs.len())];
                        b.add(d, a, rng.gen_range(-4i64..4));
                    }
                    1 => {
                        let d = regs[rng.gen_range(0..regs.len())];
                        b.load(d, base, rng.gen_range(0..8) * 8);
                    }
                    2 => {
                        let s = regs[rng.gen_range(0..regs.len())];
                        b.store(s, base, rng.gen_range(0..8) * 8);
                    }
                    3 => {
                        let r = regs[rng.gen_range(0..regs.len())];
                        b.inst(Inst::Ckpt { reg: r });
                    }
                    _ => {
                        let d = regs[rng.gen_range(0..regs.len())];
                        let a = regs[rng.gen_range(0..regs.len())];
                        b.mul(d, a, rng.gen_range(1i64..4));
                    }
                }
            }
            b.ret(Some(Operand::Reg(regs[0])));
            let f = b.finish().unwrap();
            let p = Program::with_params(f, DataSegment::zeroed(0x1000, 8), vec![0x1000]);
            let golden = interp::run(&p, &interp::InterpConfig::default()).unwrap();
            let mut q = p.clone();
            schedule(&mut q.func);
            let after = interp::run(&q, &interp::InterpConfig::default()).unwrap();
            assert_eq!(golden.memory, after.memory, "seed {seed}");
            assert_eq!(golden.ret, after.ret, "seed {seed}");
        }
    }
}
