//! Analytic hardware models for the Turnpike reproduction.
//!
//! * [`cacti`] — a small CAM/RAM area and dynamic-energy model calibrated at
//!   22 nm to the paper's CACTI numbers, regenerating Table 1 (the paper's
//!   cost comparison between Turnpike's structures and an enlarged store
//!   buffer).
//! * The sensor-latency model for Figure 18 lives in `turnpike-sensor`
//!   (`SensorGrid`), next to the strike sampling it parameterizes.

pub mod cacti;

pub use cacti::{CostModel, StructureCost, Table1, Table1Row};
