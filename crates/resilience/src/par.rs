//! Minimal deterministic parallel map.
//!
//! The build environment has no access to crates.io, so `rayon` is not
//! available; this is the small slice of it the evaluation engine needs.
//! Work is pulled from a shared atomic index (natural load balancing for
//! items of very different cost, e.g. smoke vs full-scale kernels) and every
//! result is written into its item's slot, so the output order is the input
//! order regardless of thread count or scheduling — callers get byte-stable
//! output for any `threads`.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A result buffer workers write into without synchronization.
///
/// Soundness rests on slot disjointness: the atomic work index hands each
/// index to exactly one worker, so no two threads ever touch the same slot,
/// and the caller only reads the slots after `thread::scope` has joined
/// every worker. A `Mutex` here would serialize result writes across
/// workers for no benefit — there is nothing to contend on. The slots hold
/// `Option<R>` (not `MaybeUninit`) so a panic mid-campaign drops the
/// results that did land instead of leaking them.
struct Slots<R> {
    cells: Box<[UnsafeCell<Option<R>>]>,
}

// SAFETY: workers access disjoint cells (see above), never the same cell
// from two threads.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        Slots {
            cells: (0..len).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Write the result for `i`. Caller must be the unique owner of index
    /// `i` (handed out by the atomic work index) while workers run.
    unsafe fn write(&self, i: usize, value: R) {
        *self.cells[i].get() = Some(value);
    }

    /// Move every result out, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if any slot was never written.
    fn take(self) -> Vec<R> {
        self.cells
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner().expect("every slot filled"))
            .collect()
    }
}

/// Apply `f` to every item, using up to `threads` worker threads, and
/// return the results in input order. `f` receives `(index, &item)`.
///
/// `threads <= 1` (or a single item) runs inline on the caller's thread —
/// the degenerate case is exactly a serial `map`, which keeps `--threads 1`
/// free of any thread overhead and trivially deterministic.
///
/// # Panics
///
/// A panic inside `f` is resumed on the caller's thread after all workers
/// stop picking up new items.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    // Counts landed results so the post-join sanity check can assert the
    // no-panic case really filled every slot.
    let filled = AtomicUsize::new(0);
    let slots: Slots<R> = Slots::new(items.len());
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    // SAFETY: `i` came from the atomic counter, so this
                    // worker exclusively owns slot `i` and writes it once.
                    Ok(r) => unsafe {
                        slots.write(i, r);
                        filled.fetch_add(1, Ordering::Release);
                    },
                    Err(e) => {
                        // First panic wins; park the payload and stop all
                        // workers by exhausting the index.
                        let mut p = panicked.lock().expect("panic slot poisoned");
                        if p.is_none() {
                            *p = Some(e);
                        }
                        next.store(items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = panicked.into_inner().expect("panic slot poisoned") {
        resume_unwind(e);
    }
    let n = filled.load(Ordering::Acquire);
    assert_eq!(n, items.len(), "no panic, so every slot was filled");
    slots.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn drops_are_balanced_on_success() {
        // Heap-owning results surface double-frees or leaks under the
        // unsafe slot writes; run a shape where every slot is a Vec.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, 8, |i, _| vec![i; 3]);
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, v)| v == &vec![i; 3]));
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map(&items, 16, |_, &x| x * 2), vec![0, 2, 4]);
    }
}
