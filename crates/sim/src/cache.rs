//! Set-associative cache timing model.
//!
//! Timing only: data values live in the functional memory map; the cache
//! tracks tags with LRU replacement to decide hit/miss latencies. Write-back,
//! write-allocate, matching the configured L1D/L2 hierarchy.

/// One set-associative, LRU, tag-only cache level.
///
/// Lines live in one flat `num_sets * ways` array with a per-set occupancy
/// count instead of a `Vec` per set: accesses index a contiguous slice, and
/// cloning the whole cache — which the core's snapshot API does per capture
/// and per fork — is two `memcpy`s instead of one allocation per set.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Flat line storage; set `s` owns `lines[s * ways .. (s + 1) * ways]`,
    /// of which the first `occ[s]` slots are valid.
    lines: Box<[CacheLine]>,
    /// Valid lines per set (fill order; eviction keeps slots dense).
    occ: Box<[u32]>,
    ways: usize,
    /// `log2(line_bytes)`: every geometry knob is a power of two, so the
    /// per-access line/set/tag split is shifts and a mask, not division.
    line_shift: u32,
    set_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine {
    tag: u64,
    lru: u64,
}

impl Cache {
    /// Create a cache of `bytes` capacity with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into at least one
    /// power-of-two set count (line size must be a power of two as well).
    pub fn new(bytes: u64, ways: u32, line_bytes: u64) -> Self {
        let num_sets = bytes / line_bytes / ways as u64;
        assert!(num_sets > 0, "cache too small for its geometry");
        assert!(
            line_bytes.is_power_of_two() && num_sets.is_power_of_two(),
            "cache geometry must be a power of two"
        );
        Cache {
            lines: vec![CacheLine { tag: 0, lru: 0 }; (num_sets * ways as u64) as usize]
                .into_boxed_slice(),
            occ: vec![0; num_sets as usize].into_boxed_slice(),
            ways: ways as usize,
            line_shift: line_bytes.trailing_zeros(),
            set_shift: num_sets.trailing_zeros(),
            set_mask: num_sets - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Access `addr` at logical time `now`; returns `true` on hit.
    /// Misses allocate (write-allocate for stores, fill for loads).
    ///
    /// One pass over the set serves both lookups a miss needs: the tag
    /// probe and the LRU victim. Tracking the running minimum costs a
    /// compare per line on the (early-returning) hit path but saves the
    /// second full scan every miss — the case that dominates on
    /// cache-averse kernels. `<` keeps the first minimum, matching what
    /// `min_by_key` picked before, so victim choice is bit-identical.
    pub fn access(&mut self, addr: u64, now: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let occ = self.occ[set_idx] as usize;
        let set = &mut self.lines[set_idx * self.ways..set_idx * self.ways + occ];
        let (mut victim, mut victim_lru) = (0usize, u64::MAX);
        for (i, l) in set.iter_mut().enumerate() {
            if l.tag == tag {
                l.lru = now;
                self.hits += 1;
                return true;
            }
            if l.lru < victim_lru {
                victim = i;
                victim_lru = l.lru;
            }
        }
        self.misses += 1;
        if occ < self.ways {
            self.lines[set_idx * self.ways + occ] = CacheLine { tag, lru: now };
            self.occ[set_idx] += 1;
        } else {
            set[victim] = CacheLine { tag, lru: now };
        }
        false
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Replay equivalence against a golden-run cache whose logical clock
    /// trails this one's by `self_now - golden_now`: identical future
    /// hit/miss/eviction behavior for any access sequence issued at shifted
    /// times. Requires (per set): equal occupancy, equal tags in slot
    /// order, the same `(lru, slot)` rank permutation (eviction picks the
    /// first minimum, so only relative order matters among stamps that are
    /// all in the past), and agreement on which lines are stamped *exactly
    /// now* — a future same-cycle access can tie only with those. The
    /// hit/miss counters are statistics, synthesized separately.
    pub(crate) fn replay_equivalent(&self, golden: &Cache, self_now: u64, golden_now: u64) -> bool {
        if self.occ != golden.occ {
            return false;
        }
        debug_assert_eq!(self.ways, golden.ways);
        for set_idx in 0..self.occ.len() {
            let occ = self.occ[set_idx] as usize;
            let a = &self.lines[set_idx * self.ways..set_idx * self.ways + occ];
            let b = &golden.lines[set_idx * self.ways..set_idx * self.ways + occ];
            for (x, y) in a.iter().zip(b) {
                if x.tag != y.tag || (x.lru == self_now) != (y.lru == golden_now) {
                    return false;
                }
            }
            for i in 0..occ {
                let rank = |set: &[CacheLine], i: usize| {
                    let key = (set[i].lru, i);
                    set.iter()
                        .enumerate()
                        .filter(|&(j, l)| (l.lru, j) < key)
                        .count()
                };
                if rank(a, i) != rank(b, i) {
                    return false;
                }
            }
        }
        true
    }
}

/// Two-level hierarchy returning full access latencies.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l1_hit: u64,
    l2_hit: u64,
    mem_latency: u64,
}

impl Hierarchy {
    /// Build from a [`SimConfig`](crate::SimConfig).
    pub fn new(cfg: &crate::SimConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            l1_hit: cfg.l1_hit,
            l2_hit: cfg.l2_hit,
            mem_latency: cfg.mem_latency,
        }
    }

    /// Latency of a data access at `addr`, updating both levels.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        if self.l1.access(addr, now) {
            self.l1_hit
        } else if self.l2.access(addr, now) {
            self.l1_hit + self.l2_hit
        } else {
            self.l1_hit + self.l2_hit + self.mem_latency
        }
    }

    /// Touch for a store release (no pipeline latency charged).
    pub fn touch(&mut self, addr: u64, now: u64) {
        let _ = self.access(addr, now);
    }

    /// (L1 hits, L1 misses, L2 hits, L2 misses).
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let (h1, m1) = self.l1.stats();
        let (h2, m2) = self.l2.stats();
        (h1, m1, h2, m2)
    }

    /// [`Cache::replay_equivalent`] across both levels.
    pub(crate) fn replay_equivalent(
        &self,
        golden: &Hierarchy,
        self_now: u64,
        golden_now: u64,
    ) -> bool {
        self.l1.replay_equivalent(&golden.l1, self_now, golden_now)
            && self.l2.replay_equivalent(&golden.l2, self_now, golden_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x1000, 0));
        assert!(c.access(0x1000, 1));
        assert!(c.access(0x1008, 2)); // same line
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, 1 set of interest: three conflicting lines.
        let mut c = Cache::new(128, 2, 64); // 1 set
        assert!(!c.access(0x0000, 0));
        assert!(!c.access(0x1000, 1));
        assert!(!c.access(0x2000, 2)); // evicts 0x0000
        assert!(!c.access(0x0000, 3)); // miss again
        assert!(c.access(0x2000, 4)); // still resident
    }

    #[test]
    fn hierarchy_latencies() {
        let cfg = crate::SimConfig::baseline();
        let mut h = Hierarchy::new(&cfg);
        // Cold: full miss.
        assert_eq!(h.access(0x4000, 0), 2 + 20 + 100);
        // Warm L1.
        assert_eq!(h.access(0x4000, 1), 2);
        let (h1, m1, _h2, m2) = h.stats();
        assert_eq!((h1, m1, m2), (1, 1, 1));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = crate::SimConfig {
            l1_bytes: 128,
            l1_ways: 1,
            l2_bytes: 4096,
            l2_ways: 4,
            ..crate::SimConfig::baseline()
        };
        let mut h = Hierarchy::new(&cfg);
        h.access(0x0000, 0);
        h.access(0x0080, 1); // conflicts in L1 (2 sets, same set 0)
        h.access(0x0100, 2);
        // 0x0000 evicted from tiny L1 but still in L2.
        assert_eq!(h.access(0x0000, 3), 2 + 20);
    }

    #[test]
    #[should_panic(expected = "cache too small")]
    fn rejects_impossible_geometry() {
        let _ = Cache::new(64, 2, 64);
    }
}
