//! Backward liveness dataflow analysis.
//!
//! Liveness drives eager checkpointing (a register updated in a region is
//! checkpointed only if it is *live-out* of the region), checkpoint pruning,
//! register allocation, and recovery-block generation.

use crate::block::BlockId;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::regset::RegSet;

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Compute liveness with the standard backward iterative dataflow.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let cap = f.num_regs;
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![RegSet::new(cap); n];
        let mut kill = vec![RegSet::new(cap); n];
        for (id, b) in f.iter_blocks() {
            let g = &mut gen[id.index()];
            let k = &mut kill[id.index()];
            for inst in &b.insts {
                for u in inst.uses() {
                    if !k.contains(u) {
                        g.insert(u);
                    }
                }
                if let Some(d) = inst.def() {
                    k.insert(d);
                }
            }
            for u in b.term.uses() {
                if !k.contains(u) {
                    g.insert(u);
                }
            }
        }
        let mut live_in = vec![RegSet::new(cap); n];
        let mut live_out = vec![RegSet::new(cap); n];
        // Iterate in postorder (reverse RPO) until fixed point.
        let order: Vec<BlockId> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out = RegSet::new(cap);
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inp = out.clone();
                inp.subtract(&kill[bi]);
                inp.union_with(&gen[bi]);
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inp != live_in[bi] {
                    live_in[bi] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }

    /// Registers live at exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Registers live immediately *before* instruction `idx` of block `b`.
    ///
    /// Computed by walking backward from the block's live-out; `idx` equal to
    /// the instruction count yields liveness before the terminator.
    pub fn live_before(&self, f: &Function, b: BlockId, idx: usize) -> RegSet {
        let blk = f.block(b);
        let mut live = self.live_out[b.index()].clone();
        for u in blk.term.uses() {
            live.insert(u);
        }
        for i in (idx..blk.insts.len()).rev() {
            let inst = &blk.insts[i];
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, Terminator};
    use crate::inst::{Addr, BinOp, Inst};
    use crate::reg::{Operand, Reg};

    fn r(i: u32) -> Reg {
        Reg(i)
    }

    /// bb0: v0 = mov 1; v1 = add v0, 2; br v1 -> bb1 | bb2
    /// bb1: st v0; jmp bb2
    /// bb2: ret v1
    fn sample() -> Function {
        let mut f = Function::empty("s");
        f.num_regs = 3;
        let mut b0 = BasicBlock::new(Terminator::Branch {
            cond: r(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        b0.insts = vec![
            Inst::Mov {
                dst: r(0),
                src: Operand::Imm(1),
            },
            Inst::Bin {
                op: BinOp::Add,
                dst: r(1),
                lhs: Operand::Reg(r(0)),
                rhs: Operand::Imm(2),
            },
        ];
        let mut b1 = BasicBlock::new(Terminator::Jump(BlockId(2)));
        b1.insts = vec![Inst::Store {
            src: Operand::Reg(r(0)),
            addr: Addr::abs(0x1000),
        }];
        let b2 = BasicBlock::new(Terminator::Ret {
            value: Some(Operand::Reg(r(1))),
        });
        f.blocks = vec![b0, b1, b2];
        f
    }

    #[test]
    fn block_level_liveness() {
        let f = sample();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // v0 and v1 live out of bb0 (v0 used in bb1, v1 in bb2).
        assert!(lv.live_out(BlockId(0)).contains(r(0)));
        assert!(lv.live_out(BlockId(0)).contains(r(1)));
        // Nothing live into bb0 (v0 defined locally).
        assert!(lv.live_in(BlockId(0)).is_empty());
        // v1 live through bb1.
        assert!(lv.live_in(BlockId(1)).contains(r(1)));
        assert!(lv.live_in(BlockId(1)).contains(r(0)));
        assert!(lv.live_out(BlockId(1)).contains(r(1)));
        assert!(!lv.live_out(BlockId(1)).contains(r(0)));
        // bb2 needs v1 only.
        assert_eq!(
            lv.live_in(BlockId(2)).iter().collect::<Vec<_>>(),
            vec![r(1)]
        );
        assert!(lv.live_out(BlockId(2)).is_empty());
    }

    #[test]
    fn point_liveness_inside_block() {
        let f = sample();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // Before inst 0 of bb0: nothing live (v0 defined at 0).
        let before0 = lv.live_before(&f, BlockId(0), 0);
        assert!(before0.is_empty());
        // Before inst 1 (the add): v0 is live (used by add and bb1).
        let before1 = lv.live_before(&f, BlockId(0), 1);
        assert!(before1.contains(r(0)));
        assert!(!before1.contains(r(1)));
        // Before terminator of bb0: both live.
        let before_term = lv.live_before(&f, BlockId(0), 2);
        assert!(before_term.contains(r(0)) && before_term.contains(r(1)));
    }

    #[test]
    fn loop_carried_liveness() {
        // bb0: v0 = 0 ; jmp bb1
        // bb1: v0 = add v0, 1 ; v1 = cmp.lt v0, 10 ; br v1 bb1 bb2
        // bb2: ret v0
        let mut f = Function::empty("l");
        f.num_regs = 2;
        let mut b0 = BasicBlock::new(Terminator::Jump(BlockId(1)));
        b0.insts = vec![Inst::Mov {
            dst: r(0),
            src: Operand::Imm(0),
        }];
        let mut b1 = BasicBlock::new(Terminator::Branch {
            cond: r(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        b1.insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                dst: r(0),
                lhs: Operand::Reg(r(0)),
                rhs: Operand::Imm(1),
            },
            Inst::Cmp {
                op: crate::inst::CmpOp::Lt,
                dst: r(1),
                lhs: Operand::Reg(r(0)),
                rhs: Operand::Imm(10),
            },
        ];
        let b2 = BasicBlock::new(Terminator::Ret {
            value: Some(Operand::Reg(r(0))),
        });
        f.blocks = vec![b0, b1, b2];
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // v0 is loop-carried: live into and out of the loop block.
        assert!(lv.live_in(BlockId(1)).contains(r(0)));
        assert!(lv.live_out(BlockId(1)).contains(r(0)));
        // v1 is consumed by the branch, not live into bb2.
        assert!(!lv.live_in(BlockId(2)).contains(r(1)));
    }
}
