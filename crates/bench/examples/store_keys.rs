//! Prints the uniform-scheme store-key material pinned by
//! `crates/bench/golden/store_keys.txt`.
//!
//! Regenerate the golden (only when a key change is intended — it
//! invalidates every cached uniform-scheme artifact) with:
//!
//! ```text
//! cargo run -p turnpike-bench --example store_keys > crates/bench/golden/store_keys.txt
//! ```

fn main() {
    print!("{}", turnpike_bench::uniform_store_key_material());
}
