//! Store-buffer-aware region partitioning (paper §2.1, §4.3.1).
//!
//! Verifiable regions are delimited by [`Inst::RegionBoundary`] markers. The
//! partitioner enforces two invariants:
//!
//! 1. **Loop rule** — every loop whose body contains a regular store gets a
//!    boundary at the top of its header (as in Turnstile), so a dynamic
//!    region can never accumulate stores across iterations.
//! 2. **Budget rule** — along every path between consecutive boundaries there
//!    are at most `budget` stores, where `budget = max(1, SB/2)` so that one
//!    region's verification can overlap the next region's execution.
//!
//! The budget rule is enforced by [`split_overfull`], a path-insensitive
//! dataflow (`max` at joins) over "stores since the last boundary", which the
//! compile pipeline re-runs after checkpoint insertion until a fixed point.

use turnpike_ir::{BlockId, Cfg, DomTree, Function, Inst, LoopForest};

/// Blocks inside a loop that currently contains no region boundary. The
/// checkpoint stores in such blocks re-write the same slots every iteration
/// and coalesce into one SB entry per register, so the budget dataflow
/// weights them zero; [`ensure_ckpt_loops`] separately bounds the number of
/// distinct registers such a loop may checkpoint.
fn coalescing_blocks(f: &Function) -> Vec<bool> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    let mut out = vec![false; f.blocks.len()];
    for l in loops.loops() {
        let has_boundary = l
            .body
            .iter()
            .any(|&b| f.block(b).insts.iter().any(|i| i.is_boundary()));
        if !has_boundary {
            for &b in &l.body {
                out[b.index()] = true;
            }
        }
    }
    out
}

/// The next unused boundary id in `f`.
pub fn next_boundary_id(f: &Function) -> u32 {
    f.iter_insts()
        .filter_map(|(_, _, i)| match i {
            Inst::RegionBoundary { id } => Some(*id + 1),
            _ => None,
        })
        .max()
        .unwrap_or(1)
}

/// Initial partitioning: loop rule + budget rule (counting regular stores;
/// checkpoints do not exist yet). Returns the number of boundaries inserted.
pub fn partition(f: &mut Function, budget: u32) -> u32 {
    let mut inserted = insert_loop_header_boundaries(f, |inst| matches!(inst, Inst::Store { .. }));
    inserted += split_overfull(f, budget);
    inserted
}

/// Insert a boundary at the top of every loop header whose body contains an
/// instruction matching `needs_boundary`, unless the header already starts
/// with a boundary. Returns the number inserted.
pub fn insert_loop_header_boundaries<P>(f: &mut Function, needs_boundary: P) -> u32
where
    P: Fn(&Inst) -> bool,
{
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    let mut id = next_boundary_id(f);
    let mut inserted = 0;
    let mut headers: Vec<BlockId> = Vec::new();
    for l in loops.loops() {
        let has = l
            .body
            .iter()
            .any(|&b| f.block(b).insts.iter().any(&needs_boundary));
        if has && !headers.contains(&l.header) {
            headers.push(l.header);
        }
    }
    for h in headers {
        let blk = f.block_mut(h);
        if !matches!(blk.insts.first(), Some(Inst::RegionBoundary { .. })) {
            blk.insts.insert(0, Inst::RegionBoundary { id });
            id += 1;
            inserted += 1;
        }
    }
    inserted
}

/// Enforce the budget rule, counting *all* stores (regular and checkpoint).
/// Returns the number of boundaries inserted (0 means the function already
/// satisfies the budget).
///
/// A boundary is never placed between an instruction and the checkpoint of
/// the register it defines (the pair must stay in one region so the eager
/// checkpoint saves the value before it can cross a boundary).
pub fn split_overfull(f: &mut Function, budget: u32) -> u32 {
    let budget = budget.max(1);
    let mut total = 0;
    // Each pass computes entry counts, then splits every overfull block;
    // repeat until the analysis is clean.
    for _ in 0..64 {
        let s_in = stores_since_boundary(f, budget);
        let coalescing = coalescing_blocks(f);
        let mut id = next_boundary_id(f);
        let mut inserted = 0;
        for bi in 0..f.blocks.len() {
            let mut cnt = s_in[bi];
            let old = std::mem::take(&mut f.blocks[bi].insts);
            let mut new: Vec<Inst> = Vec::with_capacity(old.len() + 4);
            for inst in old {
                if inst.is_boundary() {
                    cnt = 0;
                } else if inst.is_ckpt() && coalescing[bi] {
                    // Coalescing in-loop checkpoint: weight zero.
                } else if inst.is_store() {
                    if cnt >= budget {
                        // Keep def+ckpt pairs atomic.
                        let pair = match inst {
                            Inst::Ckpt { reg } => {
                                matches!(new.last(), Some(prev) if prev.def() == Some(reg))
                            }
                            _ => false,
                        };
                        let boundary = Inst::RegionBoundary { id };
                        id += 1;
                        inserted += 1;
                        if pair {
                            let def = new.pop().expect("pair head exists");
                            new.push(boundary);
                            new.push(def);
                        } else {
                            new.push(boundary);
                        }
                        cnt = 0;
                    }
                    cnt += 1;
                }
                new.push(inst);
            }
            f.blocks[bi].insts = new;
        }
        total += inserted;
        if inserted == 0 {
            break;
        }
    }
    total
}

/// Maximum static stores between consecutive boundaries anywhere in `f`,
/// capped at `cap + 1` (values above the cap are reported as `cap + 1`).
pub fn max_region_stores(f: &Function, cap: u32) -> u32 {
    let s_in = stores_since_boundary(f, cap);
    let coalescing = coalescing_blocks(f);
    let mut max = 0;
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut cnt = s_in[bi];
        for inst in &b.insts {
            if inst.is_boundary() {
                cnt = 0;
            } else if inst.is_ckpt() && coalescing[bi] {
                // Coalesces into its register's existing SB entry.
            } else if inst.is_store() {
                cnt = (cnt + 1).min(cap + 1);
                max = max.max(cnt);
            }
        }
    }
    max
}

/// For each block, the maximum number of stores on any path from the last
/// boundary to the block's entry, saturated at `cap + 1`.
fn stores_since_boundary(f: &Function, cap: u32) -> Vec<u32> {
    let cfg = Cfg::compute(f);
    let coalescing = coalescing_blocks(f);
    let n = f.blocks.len();
    let sat = cap + 1;
    let mut s_in = vec![0u32; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let mut cnt = s_in[b.index()];
            for inst in &f.block(b).insts {
                if inst.is_boundary() {
                    cnt = 0;
                } else if inst.is_ckpt() && coalescing[b.index()] {
                    // Weight zero: coalesces per register.
                } else if inst.is_store() {
                    cnt = (cnt + 1).min(sat);
                }
            }
            for &s in cfg.succs(b) {
                if cnt > s_in[s.index()] {
                    s_in[s.index()] = cnt;
                    changed = true;
                }
            }
        }
    }
    s_in
}

/// After checkpoint insertion: any loop with no boundary in its body whose
/// body checkpoints more than `budget` distinct registers gets a header
/// boundary (its same-address checkpoint stores coalesce in the SB, so up to
/// `budget` distinct registers are safe without one). Returns insertions.
pub fn ensure_ckpt_loops(f: &mut Function, budget: u32) -> u32 {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    let mut offending: Vec<BlockId> = Vec::new();
    for l in loops.loops() {
        let has_boundary = l
            .body
            .iter()
            .any(|&b| f.block(b).insts.iter().any(|i| i.is_boundary()));
        if has_boundary {
            continue;
        }
        let mut regs: Vec<turnpike_ir::Reg> = Vec::new();
        for &b in &l.body {
            for inst in &f.block(b).insts {
                if let Inst::Ckpt { reg } = *inst {
                    if !regs.contains(&reg) {
                        regs.push(reg);
                    }
                }
            }
        }
        if regs.len() as u32 > budget && !offending.contains(&l.header) {
            offending.push(l.header);
        }
    }
    let base_id = next_boundary_id(f);
    let count = offending.len() as u32;
    for (k, h) in offending.into_iter().enumerate() {
        f.block_mut(h).insts.insert(
            0,
            Inst::RegionBoundary {
                id: base_id + k as u32,
            },
        );
    }
    count
}

/// Region partitioning as a pipeline [`crate::pass::Pass`].
pub struct PartitionPass;

impl crate::pass::Pass for PartitionPass {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        partition(&mut prog.func, cx.config.region_budget());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{FunctionBuilder, Operand, Reg};

    /// Straight-line function with `n` stores.
    fn stores(n: usize) -> Function {
        let mut b = FunctionBuilder::new("s");
        let x = b.fresh_reg();
        b.mov(x, 1i64);
        for i in 0..n {
            b.store_abs(x, 0x1000 + 8 * i as i64);
        }
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn budget_splits_straight_line() {
        let mut f = stores(7);
        let n = partition(&mut f, 2);
        // 7 stores, budget 2 -> boundaries before stores 3,5,7 = 3 inserted.
        assert_eq!(n, 3);
        assert_eq!(max_region_stores(&f, 10), 2);
    }

    #[test]
    fn budget_one_isolates_every_store() {
        let mut f = stores(4);
        partition(&mut f, 1);
        assert_eq!(max_region_stores(&f, 10), 1);
        assert_eq!(f.boundary_count(), 3);
    }

    #[test]
    fn loop_with_store_gets_header_boundary() {
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.store_abs(i, 0x1000);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(None);
        let mut f = b.finish().unwrap();
        partition(&mut f, 2);
        assert!(matches!(f.blocks[1].insts[0], Inst::RegionBoundary { .. }));
        // Dynamic regions are bounded even though the loop iterates.
        assert!(max_region_stores(&f, 10) <= 2);
    }

    #[test]
    fn storeless_loop_stays_boundary_free() {
        let mut b = FunctionBuilder::new("nl");
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(None);
        let mut f = b.finish().unwrap();
        partition(&mut f, 2);
        assert_eq!(f.boundary_count(), 0);
    }

    #[test]
    fn pairs_stay_atomic() {
        let mut b = FunctionBuilder::new("pair");
        let x = b.fresh_reg();
        let y = b.fresh_reg();
        b.mov(x, 1i64);
        b.store_abs(x, 0x1000);
        b.store_abs(x, 0x1008);
        b.mov(y, 2i64);
        b.inst(Inst::Ckpt { reg: y }); // pair: mov y / ckpt y
        b.ret(None);
        let mut f = b.finish().unwrap();
        let n = split_overfull(&mut f, 2);
        assert_eq!(n, 1);
        // The boundary must sit before `mov y`, not between mov and ckpt.
        let insts = &f.blocks[0].insts;
        let b_idx = insts.iter().position(|i| i.is_boundary()).unwrap();
        assert!(matches!(insts[b_idx + 1], Inst::Mov { dst: Reg(1), .. }));
        assert!(matches!(insts[b_idx + 2], Inst::Ckpt { reg: Reg(1) }));
    }

    #[test]
    fn ensure_ckpt_loops_fires_only_above_budget() {
        let mut b = FunctionBuilder::new("ck");
        let regs: Vec<Reg> = (0..4).map(|_| b.fresh_reg()).collect();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        for &r in &regs {
            b.mov(r, 0i64);
        }
        b.jump(body);
        b.switch_to(body);
        for &r in &regs {
            b.add(r, r, 1i64);
            b.inst(Inst::Ckpt { reg: r });
        }
        b.cmp_lt(c, regs[0], 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(regs[0])));
        let mut f = b.finish().unwrap();
        // 4 distinct checkpointed regs, budget 2 -> boundary inserted.
        assert_eq!(ensure_ckpt_loops(&mut f, 2), 1);
        // Re-running is idempotent (loop now has a boundary).
        assert_eq!(ensure_ckpt_loops(&mut f, 2), 0);
        // With a generous budget nothing happens.
        let mut g = stores(0);
        assert_eq!(ensure_ckpt_loops(&mut g, 8), 0);
    }

    #[test]
    fn next_boundary_id_monotone() {
        let mut f = stores(5);
        assert_eq!(next_boundary_id(&f), 1);
        partition(&mut f, 1);
        let id1 = next_boundary_id(&f);
        assert!(id1 > 1);
        split_overfull(&mut f, 1);
        assert_eq!(next_boundary_id(&f), id1); // no new splits needed
    }
}
