//! Region lifecycle timeline: trace a faulted Turnpike run through the
//! Chrome trace-event exporter, print the resilience events around the
//! strike — region starts, fast releases, quarantines, the strike, its
//! detection, the recovery, and post-recovery verification — and write a
//! Perfetto-loadable timeline to `region_timeline.json`.
//!
//! ```sh
//! cargo run --example region_timeline
//! # then open region_timeline.json in https://ui.perfetto.dev
//! ```

use turnpike::compiler::{compile, CompilerConfig};
use turnpike::sim::{
    shared_sink, ChromeTrace, Core, Fault, FaultKind, FaultPlan, SimConfig, TraceEvent,
};
use turnpike::workloads::{kernel_by_name, Scale, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel =
        kernel_by_name(Suite::Cpu2006, "libquan", Scale::Smoke).expect("libquan is in the catalog");
    let compiled = compile(&kernel.program, &CompilerConfig::turnpike(4))?;

    // A datapath strike mid-run, detected by the sensors 7 cycles later.
    let plan = FaultPlan::new(vec![Fault {
        strike_cycle: 120,
        detect_latency: 7,
        kind: FaultKind::Datapath { bit: 21 },
    }]);
    let sink = shared_sink(ChromeTrace::new());
    let mut core = Core::new(&compiled.program, SimConfig::turnpike(4, 10));
    core.attach_sink(sink.clone());
    let outcome = core.run_with_faults(&plan)?;
    let chrome = sink.borrow();

    println!(
        "kernel {}: {} cycles, {} recoveries, ret={:?}\n",
        kernel.name, outcome.stats.cycles, outcome.stats.recoveries, outcome.ret
    );

    // Print a window of events around the strike.
    let window = 110..190;
    println!("{:>7}  event", "cycle");
    let mut shown = 0;
    for ev in chrome.events() {
        let c = ev.cycle();
        if !window.contains(&c) {
            continue;
        }
        let line = match ev {
            TraceEvent::RegionStart { seq, .. } => format!("region {seq} starts"),
            TraceEvent::RegionVerified { seq, .. } => {
                format!("region {seq} VERIFIED (error-free for a full WCDL)")
            }
            TraceEvent::WarFreeRelease { addr, .. } => {
                format!("store to {addr:#x} fast-released (WAR-free)")
            }
            TraceEvent::ColoredRelease { reg, color, .. } => {
                format!("ckpt r{reg} fast-released to color {color}")
            }
            TraceEvent::Quarantined { seq, .. } => {
                format!("store quarantined in gated SB (region {seq})")
            }
            TraceEvent::SbRelease { seq, .. } => {
                format!("quarantined store drains to cache (region {seq})")
            }
            TraceEvent::SbOccupancy { entries, .. } => {
                format!("gated SB occupancy now {entries}")
            }
            TraceEvent::ClqCheck { addr, war_free, .. } => format!(
                "CLQ checks store to {addr:#x}: {}",
                if *war_free {
                    "WAR-free"
                } else {
                    "must quarantine"
                }
            ),
            TraceEvent::CacheWriteback { addr, .. } => {
                format!("released store writes back to cache at {addr:#x}")
            }
            TraceEvent::Stall { kind, cycles, .. } => {
                format!("pipeline stalls {cycles} cycles ({})", kind.name())
            }
            TraceEvent::Strike { .. } => ">>> PARTICLE STRIKE".to_string(),
            TraceEvent::Detection { .. } => ">>> sensors report the strike".to_string(),
            TraceEvent::Recovery {
                target_seq,
                resume_pc,
                ..
            } => format!(
                ">>> RECOVERY: squash unverified state, restore live-ins, \
                 re-execute region {target_seq} from pc {resume_pc}"
            ),
        };
        println!("{c:>7}  {line}");
        shown += 1;
        if shown > 40 {
            println!("    ... (truncated)");
            break;
        }
    }

    let out = "region_timeline.json";
    std::fs::write(out, chrome.render())?;
    println!(
        "\nwrote {out} ({} events) — load it in ui.perfetto.dev",
        chrome.events().len()
    );
    Ok(())
}
