//! Degenerate per-region policies must reproduce the uniform schemes.
//!
//! `ProtectionPolicy::ForceUniform(m)` tags every static region with mode
//! `m` explicitly. Semantically that is the same machine the uniform
//! pipeline builds implicitly, so campaign reports and per-strike records
//! must be byte-identical to the plain scheme — at every thread count, for
//! arbitrary campaign parameters. This pins the refactor's central
//! contract: region-granular modes are a strict generalization, not a
//! behavioral fork, of the uniform spine.

use proptest::prelude::*;
use turnpike_compiler::ProtectionPolicy;
use turnpike_isa::ProtectionMode;
use turnpike_resilience::{fault_campaign_records, CampaignConfig, RunSpec, Scheme};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn program(name: &str) -> turnpike_ir::Program {
    kernel_by_name(Suite::Cpu2006, name, Scale::Smoke)
        .expect("kernel is in the catalog")
        .program
}

fn config() -> CampaignConfig {
    CampaignConfig {
        runs: 8,
        seed: 0xDE6E,
        strikes_per_run: 1,
        ..Default::default()
    }
}

#[test]
fn force_uniform_matches_plain_scheme_at_every_thread_count() {
    let prog = program("bwaves");
    for (scheme, mode) in [
        (Scheme::Turnpike, ProtectionMode::Turnpike),
        (Scheme::Turnstile, ProtectionMode::Turnstile),
    ] {
        let plain = RunSpec::new(scheme).with_histograms();
        let forced = plain
            .clone()
            .with_policy(ProtectionPolicy::ForceUniform(mode));
        for threads in [1usize, 2, 4] {
            let (pr, precs) = fault_campaign_records(&prog, &plain, &config(), threads).unwrap();
            let (fr, frecs) = fault_campaign_records(&prog, &forced, &config(), threads).unwrap();
            assert_eq!(pr, fr, "{scheme} vs forced {mode:?} at {threads} threads");
            assert_eq!(precs, frecs, "{scheme} records at {threads} threads");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The degenerate equivalence is parameter-independent: any seed, run
    /// count, and strike multiplicity produces the same report either way.
    #[test]
    fn force_uniform_turnpike_is_turnpike_for_any_campaign(
        seed in any::<u64>(),
        runs in 1usize..6,
        strikes in 1usize..3,
    ) {
        let prog = program("leslie3d");
        let cfg = CampaignConfig { runs, seed, strikes_per_run: strikes, ..Default::default() };
        let plain = RunSpec::new(Scheme::Turnpike);
        let forced = plain
            .clone()
            .with_policy(ProtectionPolicy::ForceUniform(ProtectionMode::Turnpike));
        let (pr, precs) = fault_campaign_records(&prog, &plain, &cfg, 2).unwrap();
        let (fr, frecs) = fault_campaign_records(&prog, &forced, &cfg, 2).unwrap();
        prop_assert_eq!(pr, fr);
        prop_assert_eq!(precs, frecs);
    }
}
