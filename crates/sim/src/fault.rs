//! Fault model: particle-strike descriptions injected into a run.
//!
//! Following the paper's fault model (§5), soft errors corrupt register
//! state; the SB, RBB, CLQ, color maps, caches, and the AGU are hardened.
//! Two flavours are modeled:
//!
//! * [`FaultKind::RegisterParity`] — a bit flip in the architectural
//!   register file. Each register carries a parity bit, so the corruption is
//!   caught the first time the register is *read* (triggering recovery as if
//!   the sensors had fired); if never read, the sensor still reports the
//!   strike within WCDL.
//! * [`FaultKind::Datapath`] — a strike in the execution datapath that
//!   corrupts the result of the instruction in flight at the strike cycle.
//!   The value is written back with consistent parity, so only the acoustic
//!   sensor (within WCDL) catches it; meanwhile the wrong value may
//!   propagate, be stored, fast-released, or checkpointed. Per the paper's
//!   hardening assumptions, a corrupted value reaching a store *address* or
//!   a branch condition trips the hardened-AGU/parity path immediately.

/// What a strike corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip `bit` of architectural register `reg` while at rest.
    RegisterParity {
        /// Register index.
        reg: u8,
        /// Bit to flip (0..64).
        bit: u8,
    },
    /// Flip `bit` of the destination value of the instruction issuing at the
    /// strike cycle (no-op if that instruction writes no register).
    Datapath {
        /// Bit to flip (0..64).
        bit: u8,
    },
}

/// One particle strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Cycle at which the strike occurs.
    pub strike_cycle: u64,
    /// Sensor detection delay; detection fires at
    /// `strike_cycle + detect_latency`, which must be ≤ WCDL.
    pub detect_latency: u64,
    /// What is corrupted.
    pub kind: FaultKind,
}

/// A set of strikes for one run, sorted by strike cycle.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    watchdog: Option<u64>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build from a list (sorted internally).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.strike_cycle);
        FaultPlan {
            faults,
            watchdog: None,
        }
    }

    /// Bound the injected run to `limit` cycles: the core clamps its cycle
    /// limit to the watchdog, so a strike that corrupts control flow into a
    /// non-terminating loop aborts with a cycle-limit error instead of
    /// simulating forever. Campaigns derive the bound from the fault-free
    /// run's length and classify the abort as a hang — the fault-injection
    /// analog of detection by timeout. A corruption no scheme machinery
    /// detects can hang the program only in runs that carry faults, so the
    /// watchdog lives on the plan, not the core config.
    #[must_use]
    pub fn with_watchdog(mut self, limit: u64) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// The watchdog cycle bound, if any.
    pub fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// The strikes in cycle order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of strikes.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl FromIterator<Fault> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultPlan::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_cycle() {
        let p = FaultPlan::new(vec![
            Fault {
                strike_cycle: 90,
                detect_latency: 3,
                kind: FaultKind::Datapath { bit: 1 },
            },
            Fault {
                strike_cycle: 10,
                detect_latency: 5,
                kind: FaultKind::RegisterParity { reg: 2, bit: 7 },
            },
        ]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.faults()[0].strike_cycle, 10);
        assert_eq!(p.faults()[1].strike_cycle, 90);
    }

    #[test]
    fn from_iterator_and_none() {
        let p: FaultPlan = std::iter::empty().collect();
        assert!(p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
