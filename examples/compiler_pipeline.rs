//! Compiler pipeline tour: show what each Turnpike pass does to a kernel —
//! checkpoint counts, pruning, LICM, LIVM, spills, and the final machine
//! code of a small region.
//!
//! ```sh
//! cargo run --example compiler_pipeline
//! ```

use turnpike::compiler::{compile, compile_with_snapshots, CompilerConfig};
use turnpike::resilience::Scheme;
use turnpike::workloads::{kernel_by_name, Scale, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel =
        kernel_by_name(Suite::Cpu2017, "leela", Scale::Smoke).expect("leela is in the catalog");
    println!("kernel: {} — IR:\n{}\n", kernel.name, kernel.program.func);

    println!(
        "{:<56} {:>6} {:>7} {:>6} {:>6} {:>7}",
        "configuration", "ckpts", "pruned", "licm", "spills", "insts"
    );
    for scheme in [
        Scheme::Turnstile,
        Scheme::FastReleasePrune,
        Scheme::FastReleasePruneLicm,
        Scheme::Turnpike,
    ] {
        let cc = scheme.compiler_config(4);
        let out = compile(&kernel.program, &cc)?;
        let s = &out.stats;
        println!(
            "{:<56} {:>6} {:>7} {:>6} {:>6} {:>7}",
            scheme.label(),
            s.ckpts_inserted,
            s.ckpts_pruned,
            s.ckpts_licm_removed,
            s.spill_stores,
            s.final_insts,
        );
    }

    // How the code evolves through the pipeline.
    let (_, snaps) = compile_with_snapshots(&kernel.program, &CompilerConfig::turnpike(4))?;
    println!("\npass-by-pass evolution:");
    println!("{:<12} {:>6} {:>11}", "stage", "ckpts", "boundaries");
    for s in &snaps {
        println!("{:<12} {:>6} {:>11}", s.stage, s.ckpts, s.boundaries);
    }

    // Disassemble the first few machine instructions under full Turnpike.
    let full = compile(&kernel.program, &CompilerConfig::turnpike(4))?;
    let listing = full.program.disasm();
    println!("\nTurnpike machine code (head):");
    for line in listing.lines().take(24) {
        println!("  {line}");
    }
    println!(
        "\nrecovery blocks: {} regions, {} bytes of code total",
        full.program.recovery.len(),
        full.program.code_bytes(),
    );
    Ok(())
}
