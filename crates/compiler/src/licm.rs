//! Checkpoint sinking and loop-exit motion (paper §4.1.4).
//!
//! Eager checkpointing places the checkpoint right after the defining
//! instruction, but correctness only requires it *somewhere before the
//! region boundary* the value crosses. This pass exploits that slack twice:
//!
//! * **In-segment sinking** — every checkpoint moves to the end of its
//!   segment (just before the boundary or block end). This widens the gap
//!   between a definition and its dependent checkpoint store, attacking the
//!   same data hazard the scheduler targets.
//! * **Loop-exit motion** — in a loop whose body contains *no* region
//!   boundary, nothing inside the loop ever crosses a boundary, so the
//!   per-iteration checkpoints of a register are all redundant except for
//!   the final value; they are replaced by a single checkpoint at each loop
//!   exit. (These boundary-free loops exist because the partitioner only
//!   forces header boundaries on loops that contain stores.)
//!
//! Loop-exit motion is rejected when it would push any region past the
//! hard store-buffer bound (which would risk a structural deadlock).

use crate::partition::max_region_stores;
use turnpike_ir::{BlockId, Cfg, DomTree, Function, Inst, LoopForest, Reg};

/// Result counters for the pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LicmOutcome {
    /// Checkpoints removed from loop bodies.
    pub removed: u32,
    /// Checkpoints inserted at loop exits.
    pub inserted: u32,
}

impl LicmOutcome {
    /// Net static checkpoints eliminated.
    pub fn net_removed(&self) -> u32 {
        self.removed.saturating_sub(self.inserted)
    }
}

/// Run both sinking flavours. `sb_size` is the hard per-region store bound
/// used to gate loop-exit motion.
pub fn licm_sink(f: &mut Function, sb_size: u32) -> LicmOutcome {
    sink_in_segments(f);
    let out = hoist_out_of_loops(f, sb_size);
    sink_in_segments(f);
    out
}

/// Move each checkpoint to the end of its segment. Safe because between an
/// eager checkpoint and its segment end the register is never redefined
/// (verified defensively per move).
pub fn sink_in_segments(f: &mut Function) {
    for b in &mut f.blocks {
        let old = std::mem::take(&mut b.insts);
        let mut new: Vec<Inst> = Vec::with_capacity(old.len());
        let mut pending: Vec<Reg> = Vec::new();
        for inst in old {
            match inst {
                Inst::Ckpt { reg } => {
                    if !pending.contains(&reg) {
                        pending.push(reg);
                    }
                }
                Inst::RegionBoundary { .. } => {
                    for r in pending.drain(..) {
                        new.push(Inst::Ckpt { reg: r });
                    }
                    new.push(inst);
                }
                _ => {
                    // A redefinition of a pending register forces its
                    // checkpoint to stay ahead of the new value.
                    if let Some(d) = inst.def() {
                        if let Some(pos) = pending.iter().position(|&r| r == d) {
                            pending.remove(pos);
                            new.push(Inst::Ckpt { reg: d });
                        }
                    }
                    new.push(inst);
                }
            }
        }
        for r in pending {
            new.push(Inst::Ckpt { reg: r });
        }
        b.insts = new;
    }
}

/// Replace per-iteration checkpoints in boundary-free loops with a single
/// checkpoint per register at each loop exit.
fn hoist_out_of_loops(f: &mut Function, sb_size: u32) -> LicmOutcome {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let mut out = LicmOutcome::default();

    // Innermost first so nested motion composes.
    let mut loops: Vec<&turnpike_ir::Loop> = forest.loops().iter().collect();
    loops.sort_by_key(|l| l.body.len());

    for l in loops {
        let has_boundary = l
            .body
            .iter()
            .any(|&b| f.block(b).insts.iter().any(|i| i.is_boundary()));
        if has_boundary {
            continue;
        }
        // Registers checkpointed inside the body.
        let mut regs: Vec<Reg> = Vec::new();
        let mut count = 0u32;
        for &b in &l.body {
            for inst in &f.block(b).insts {
                if let Inst::Ckpt { reg } = *inst {
                    count += 1;
                    if !regs.contains(&reg) {
                        regs.push(reg);
                    }
                }
            }
        }
        if regs.is_empty() {
            continue;
        }
        // Exit targets: out-of-loop successors of exiting blocks.
        let mut exits: Vec<BlockId> = Vec::new();
        for &e in &l.exiting {
            for &s in cfg.succs(e) {
                if !l.contains(s) && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        if exits.is_empty() {
            continue; // infinite loop shape; leave untouched
        }
        // Tentatively transform, then verify the store bound.
        let snapshot: Vec<(usize, Vec<Inst>)> = l
            .body
            .iter()
            .chain(exits.iter())
            .map(|&b| (b.index(), f.block(b).insts.clone()))
            .collect();
        let mut removed = 0;
        for &b in &l.body {
            let blk = f.block_mut(b);
            let before = blk.insts.len();
            blk.insts.retain(|i| !i.is_ckpt());
            removed += (before - blk.insts.len()) as u32;
        }
        let mut inserted = 0;
        for &e in &exits {
            let blk = f.block_mut(e);
            for (k, &r) in regs.iter().enumerate() {
                blk.insts.insert(k, Inst::Ckpt { reg: r });
                inserted += 1;
            }
        }
        if max_region_stores(f, sb_size) > sb_size {
            // Revert: would risk a store-buffer deadlock.
            for (bi, insts) in snapshot {
                f.blocks[bi].insts = insts;
            }
            continue;
        }
        debug_assert_eq!(removed, count);
        out.removed += removed;
        out.inserted += inserted;
    }
    out
}

/// Checkpoint sinking / loop-exit motion as a pipeline
/// [`crate::pass::Pass`].
pub struct LicmPass;

impl crate::pass::Pass for LicmPass {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        let out = licm_sink(&mut prog.func, cx.config.sb_size);
        // Gross removals: the dynamic win is per-iteration, so the static
        // exit checkpoints that replace them do not offset it.
        cx.metrics.add(
            turnpike_metrics::Counter::CkptsLicmRemoved,
            u64::from(out.removed),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::insert_checkpoints;
    use turnpike_ir::{FunctionBuilder, Operand};

    #[test]
    fn sinking_moves_ckpt_to_boundary() {
        let mut b = FunctionBuilder::new("s");
        let v = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(v, 1i64);
        b.inst(Inst::Ckpt { reg: v });
        b.mov(w, 2i64);
        b.inst(Inst::Ckpt { reg: w });
        b.add(w, w, 0i64); // redefines w: its ckpt must stay before this
        b.inst(Inst::RegionBoundary { id: 1 });
        b.ret(Some(Operand::Reg(v)));
        let mut f = b.finish().unwrap();
        sink_in_segments(&mut f);
        let insts = &f.blocks[0].insts;
        // v's ckpt sank to just before the boundary; w's pinned before redef.
        let vpos = insts
            .iter()
            .position(|i| matches!(i, Inst::Ckpt { reg } if reg.0 == 0))
            .unwrap();
        let bpos = insts.iter().position(|i| i.is_boundary()).unwrap();
        assert_eq!(vpos + 1, bpos);
        let wpos = insts
            .iter()
            .position(|i| matches!(i, Inst::Ckpt { reg } if reg.0 == 1))
            .unwrap();
        let redef = insts
            .iter()
            .position(|i| matches!(i, Inst::Bin { dst, .. } if dst.0 == 1))
            .unwrap();
        assert!(wpos < redef);
    }

    /// Reduction loop with no stores: per-iteration ckpt of the accumulator
    /// collapses to a single exit checkpoint (the paper's Figure 10 effect).
    #[test]
    fn loop_exit_motion_removes_per_iteration_ckpts() {
        let mut b = FunctionBuilder::new("red");
        let acc = b.fresh_reg();
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let w = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(acc, 0i64);
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.add(acc, acc, 3i64);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 100i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, acc, 0i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let in_loop_before = f.blocks[1].insts.iter().filter(|i| i.is_ckpt()).count();
        assert!(in_loop_before >= 1, "acc and i are checkpointed in-loop");
        let out = licm_sink(&mut f, 4);
        assert!(out.removed >= 1);
        let in_loop_after = f.blocks[1].insts.iter().filter(|i| i.is_ckpt()).count();
        assert_eq!(in_loop_after, 0);
        // Exit block now checkpoints before its boundary.
        let exit = &f.blocks[2].insts;
        assert!(exit.iter().any(|i| i.is_ckpt()));
        let last_ckpt = exit.iter().rposition(|i| i.is_ckpt()).unwrap();
        let boundary = exit.iter().position(|i| i.is_boundary()).unwrap();
        assert!(last_ckpt < boundary);
        assert!(out.net_removed() <= out.removed);
    }

    #[test]
    fn loops_with_boundaries_are_left_alone() {
        let mut b = FunctionBuilder::new("wb");
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(i, i, 1i64);
        b.store_abs(i, 0x1000);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let before = f.blocks[1].insts.iter().filter(|i| i.is_ckpt()).count();
        let out = licm_sink(&mut f, 4);
        assert_eq!(out.removed, 0);
        let after = f.blocks[1].insts.iter().filter(|i| i.is_ckpt()).count();
        assert_eq!(before, after);
    }
}
