//! Bounded work queue with admission control.
//!
//! The server pushes accepted jobs here; the worker pool pops. Capacity is
//! fixed at construction: when the queue is full, [`JobQueue::try_push`]
//! fails *immediately* with the current depth so the connection handler
//! can answer with a typed `overloaded` event and a retry-after hint —
//! load is shed at admission, never by silently dropping accepted work.
//!
//! The queue also tracks **in-flight** jobs (popped but not yet finished)
//! so graceful shutdown can drain: [`JobQueue::close`] wakes blocked
//! workers, and [`JobQueue::drain_wait`] blocks until both the queue and
//! the in-flight set are empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity; the payload is the depth observed (== capacity).
    Full(usize),
    /// Queue closed for shutdown; no new work is admitted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    in_flight: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer job queue.
pub struct JobQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signaled when an item arrives or the queue closes (wakes poppers)
    /// and when the queue empties out (wakes drain waiters).
    cond: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` queued (not yet popped) jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        JobQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs queued but not yet popped.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Admit a job, or refuse without blocking. On success returns the
    /// queue depth *including* the new job (reported back to the client).
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(st.items.len()));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        self.cond.notify_all();
        Ok(depth)
    }

    /// Block until a job is available or the queue is closed *and* empty.
    /// `None` tells a worker to exit. A popped job counts as in-flight
    /// until [`JobQueue::finish`] is called.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                st.in_flight += 1;
                // Drain waiters watch the queue empty out.
                self.cond.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.cond.wait(st).unwrap();
        }
    }

    /// Mark one previously popped job as finished (success or failure).
    pub fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        st.in_flight = st
            .in_flight
            .checked_sub(1)
            .expect("finish() without matching pop()");
        self.cond.notify_all();
    }

    /// Stop admitting work and wake every blocked worker. Queued jobs are
    /// still handed out — close initiates a drain, it does not discard.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Block until no job is queued or in-flight. Callers close() first;
    /// otherwise a racing push can re-fill the queue after this returns.
    pub fn drain_wait(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.items.is_empty() || st.in_flight > 0 {
            st = self.cond.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admission_is_refused_at_capacity_and_recovers_after_pop() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
        q.finish();
    }

    #[test]
    fn close_refuses_new_work_but_drains_queued_work() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        q.finish();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_wait_blocks_until_in_flight_work_finishes() {
        let q = Arc::new(JobQueue::new(8));
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while let Some(_job) = q.pop() {
                        done.fetch_add(1, Ordering::SeqCst);
                        q.finish();
                    }
                })
            })
            .collect();
        q.close();
        q.drain_wait();
        assert_eq!(done.load(Ordering::SeqCst), 6);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn every_pushed_job_is_popped_exactly_once() {
        let q = Arc::new(JobQueue::new(64));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    while let Some(job) = q.pop() {
                        seen.lock().unwrap().push(job);
                        q.finish();
                    }
                })
            })
            .collect();
        let mut pushed = 0usize;
        let mut next = 0usize;
        while pushed < 200 {
            if q.try_push(next).is_ok() {
                pushed += 1;
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        q.drain_wait();
        for w in workers {
            w.join().unwrap();
        }
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }
}
