//! Sensor-grid detection latency model (paper Figure 18).
//!
//! Sensors are deployed as a uniform grid over the core die. The worst-case
//! detection latency (WCDL) is the flight time of the acoustic wave from the
//! farthest point to its nearest sensor, converted to clock cycles:
//!
//! ```text
//! wcdl_cycles ≈ k · sqrt(area / n_sensors) · f_clock
//! ```
//!
//! The constant `k` folds the sound velocity in silicon and the grid
//! geometry. It is calibrated to the paper's anchor point — 300 sensors on a
//! 1 mm² die at 2.5 GHz give a 10-cycle WCDL — which also reproduces the
//! rest of Figure 18 (30 sensors ≈ 30 cycles at 2.5 GHz, and the paper's
//! 2.0/3.0 GHz curves).

/// A uniform deployment of acoustic sensors over a core die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorGrid {
    /// Number of deployed sensors (≥ 1).
    pub sensors: u32,
    /// Die area covered, in mm².
    pub die_area_mm2: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
}

/// Calibration constant: cycles per (mm · GHz). Chosen so that 300 sensors
/// on 1 mm² at 2.5 GHz yield exactly 10 cycles, the paper's anchor.
pub const LATENCY_K: f64 = 69.282_032_302_755_1; // 10 / (2.5 * sqrt(1/300))

impl SensorGrid {
    /// A grid with the paper's default die (1 mm², 2.5 GHz).
    pub fn new(sensors: u32) -> Self {
        SensorGrid {
            sensors: sensors.max(1),
            die_area_mm2: 1.0,
            clock_ghz: 2.5,
        }
    }

    /// Worst-case detection latency in (fractional) cycles.
    pub fn wcdl(&self) -> f64 {
        LATENCY_K * (self.die_area_mm2 / self.sensors as f64).sqrt() * self.clock_ghz
    }

    /// Worst-case detection latency rounded up to whole cycles, as the
    /// architecture must assume.
    pub fn wcdl_cycles(&self) -> u64 {
        // Guard the calibration anchor against floating-point dust.
        (self.wcdl() - 1e-9).ceil().max(1.0) as u64
    }

    /// Sensors required to achieve a target WCDL (inverse of
    /// [`wcdl_cycles`](Self::wcdl_cycles)).
    pub fn sensors_for_wcdl(target_cycles: u64, die_area_mm2: f64, clock_ghz: f64) -> u32 {
        let t = target_cycles.max(1) as f64;
        let n = die_area_mm2 * (LATENCY_K * clock_ghz / t).powi(2);
        n.ceil() as u32
    }

    /// Approximate area overhead of the deployment as a fraction of die
    /// area, using the paper's budget figure (~300 sensors ≈ 1% of a core).
    pub fn area_overhead(&self) -> f64 {
        self.sensors as f64 * (0.01 / 300.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_point_calibrates_exactly() {
        let g = SensorGrid::new(300);
        assert_eq!(g.wcdl_cycles(), 10);
        assert!((g.wcdl() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn thirty_sensors_give_about_thirty_cycles() {
        let g = SensorGrid::new(30);
        // sqrt(10) scaling: 10 * sqrt(10) ≈ 31.6 → ceil 32; the paper quotes
        // "30 cycles with 30 sensors", same ballpark.
        assert!((30..=33).contains(&g.wcdl_cycles()), "{}", g.wcdl_cycles());
    }

    #[test]
    fn latency_scales_with_clock() {
        let slow = SensorGrid {
            clock_ghz: 2.0,
            ..SensorGrid::new(100)
        };
        let fast = SensorGrid {
            clock_ghz: 3.0,
            ..SensorGrid::new(100)
        };
        assert!(fast.wcdl() > slow.wcdl());
        assert!((fast.wcdl() / slow.wcdl() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn latency_shrinks_with_more_sensors() {
        let few = SensorGrid::new(30);
        let many = SensorGrid::new(300);
        assert!(few.wcdl() > many.wcdl());
        assert!((few.wcdl() / many.wcdl() - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn inverse_round_trips() {
        for target in [10u64, 20, 30, 40, 50] {
            let n = SensorGrid::sensors_for_wcdl(target, 1.0, 2.5);
            let g = SensorGrid::new(n);
            assert!(
                g.wcdl_cycles() <= target,
                "{n} sensors give {} cycles, wanted ≤ {target}",
                g.wcdl_cycles()
            );
        }
    }

    #[test]
    fn area_overhead_matches_budget() {
        assert!((SensorGrid::new(300).area_overhead() - 0.01).abs() < 1e-12);
        assert!(SensorGrid::new(30).area_overhead() < 0.01);
    }

    #[test]
    fn zero_sensors_clamped() {
        let g = SensorGrid::new(0);
        assert_eq!(g.sensors, 1);
        assert!(g.wcdl().is_finite());
    }
}
