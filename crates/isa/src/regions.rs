//! Static region analysis over machine programs.
//!
//! Summarizes each static region (the code between consecutive boundary
//! markers in PC order) — instruction, store, and checkpoint counts — for
//! tests and tooling that audit the partitioner's output at the machine
//! level.

use crate::inst::MachInst;
use crate::program::{MachProgram, RegionId};

/// Static summary of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSummary {
    /// Region id (0 = the implicit entry region).
    pub id: RegionId,
    /// First PC of the region's code.
    pub start_pc: u32,
    /// One past the last PC (the next boundary or program end).
    pub end_pc: u32,
    /// Instructions in the region (boundary markers excluded).
    pub insts: u32,
    /// Regular stores.
    pub stores: u32,
    /// Checkpoint stores.
    pub ckpts: u32,
    /// Whether the compiler supplied a recovery block for this region.
    pub has_recovery: bool,
}

impl RegionSummary {
    /// All stores (regular + checkpoint) in the region.
    pub fn all_stores(&self) -> u32 {
        self.stores + self.ckpts
    }
}

/// Summaries of every static region, in PC order.
///
/// Note: these are *static* (flat code) counts; a dynamic region instance
/// follows branches and may execute instructions from several static
/// regions' ranges or repeat its own. The per-path store bound is enforced
/// by the compiler's partitioner dataflow, not recomputable from this
/// flat view alone.
pub fn region_summaries(p: &MachProgram) -> Vec<RegionSummary> {
    let mut out = Vec::new();
    let mut cur = RegionSummary {
        id: RegionId(0),
        start_pc: 0,
        end_pc: 0,
        insts: 0,
        stores: 0,
        ckpts: 0,
        has_recovery: p.recovery.contains_key(&RegionId(0)),
    };
    for (pc, inst) in p.insts.iter().enumerate() {
        match inst {
            MachInst::RegionBoundary { id } => {
                cur.end_pc = pc as u32;
                out.push(cur);
                cur = RegionSummary {
                    id: *id,
                    start_pc: pc as u32 + 1,
                    end_pc: pc as u32 + 1,
                    insts: 0,
                    stores: 0,
                    ckpts: 0,
                    has_recovery: p.recovery.contains_key(id),
                };
            }
            MachInst::Ckpt { .. } => {
                cur.ckpts += 1;
                cur.insts += 1;
            }
            MachInst::Store { .. } => {
                cur.stores += 1;
                cur.insts += 1;
            }
            _ => {
                cur.insts += 1;
            }
        }
    }
    cur.end_pc = p.insts.len() as u32;
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{MOperand, PhysReg};
    use crate::MachAddr;
    use turnpike_ir::DataSegment;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn summaries_partition_the_program() {
        let insts = vec![
            MachInst::Mov {
                dst: r(0),
                src: MOperand::Imm(1),
            },
            MachInst::Store {
                src: MOperand::Reg(r(0)),
                addr: MachAddr::Abs(0x1000),
            },
            MachInst::RegionBoundary { id: RegionId(1) },
            MachInst::Ckpt { reg: r(0) },
            MachInst::RegionBoundary { id: RegionId(2) },
            MachInst::Ret { value: None },
        ];
        let p = MachProgram::from_insts("s", insts, DataSegment::zeroed(0, 0));
        let rs = region_summaries(&p);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].id, RegionId(0));
        assert_eq!(rs[0].stores, 1);
        assert_eq!(rs[0].ckpts, 0);
        assert_eq!(rs[0].insts, 2);
        assert_eq!(rs[1].id, RegionId(1));
        assert_eq!(rs[1].ckpts, 1);
        assert_eq!(rs[1].all_stores(), 1);
        assert_eq!(rs[2].id, RegionId(2));
        assert_eq!(rs[2].insts, 1); // ret
        assert_eq!(rs[2].start_pc, 5);
        assert_eq!(rs[2].end_pc, 6);
        assert!(!rs[0].has_recovery);
    }

    #[test]
    fn boundary_free_program_is_one_region() {
        let p = MachProgram::from_insts(
            "one",
            vec![MachInst::Nop, MachInst::Ret { value: None }],
            DataSegment::zeroed(0, 0),
        );
        let rs = region_summaries(&p);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].insts, 2);
        assert_eq!(rs[0].end_pc, 2);
    }
}
