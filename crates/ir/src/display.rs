//! Human-readable printing of functions.

use crate::function::Function;
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} (regs: {}) {{", self.name, self.num_regs)?;
        if !self.params.is_empty() {
            write!(f, "  params:")?;
            for p in &self.params {
                write!(f, " {p}")?;
            }
            writeln!(f)?;
        }
        for (id, b) in self.iter_blocks() {
            let marker = if id == self.entry { " (entry)" } else { "" };
            writeln!(f, "{id}:{marker}")?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::reg::Operand;

    #[test]
    fn prints_blocks_in_order() {
        let mut b = FunctionBuilder::new("show");
        let p = b.param();
        let x = b.fresh_reg();
        let next = b.create_block();
        b.add(x, p, 1i64);
        b.jump(next);
        b.switch_to(next);
        b.ret(Some(Operand::Reg(x)));
        let f = b.finish().unwrap();
        let s = f.to_string();
        assert!(s.contains("fn show"));
        assert!(s.contains("bb0: (entry)"));
        assert!(s.contains("v1 = add v0, 1"));
        assert!(s.contains("jmp bb1"));
        assert!(s.contains("ret v1"));
        assert!(s.contains("params: v0"));
    }
}
