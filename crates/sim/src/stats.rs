//! Simulation statistics.

use crate::clq::ClqStats;
use turnpike_metrics::Histogram;

/// The simulator's latency distributions, recorded when
/// [`SimConfig::histograms`](crate::SimConfig::histograms) is on.
///
/// The bundle lives behind an `Option<Box<_>>` on both the core and
/// [`SimStats`], so disabled runs carry a null pointer and every recording
/// site is one `None` check. [`SimStats::to_metrics`] projects the bundle
/// into the [`turnpike_metrics::Hist`] registry keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimHists {
    /// Cycles quarantined stores spent in the gated SB before draining.
    pub sb_residency: Histogram,
    /// Region start → verification latency.
    pub verify_latency: Histogram,
    /// Strike → detection latency (sensor exact; parity attributed to the
    /// most recent strike).
    pub detect_latency: Histogram,
    /// Cycles charged per recovery (flush + recovery block).
    pub recovery_penalty: Histogram,
}

/// Cycle accounting by stall cause plus event counters for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles (including the verification/drain tail).
    pub cycles: u64,
    /// Dynamic instructions committed (recovery re-execution included).
    pub insts: u64,
    /// Cycles lost waiting for a free store buffer slot (structural hazard).
    pub stall_sb_full: u64,
    /// Cycles lost waiting on register operands (data hazards).
    pub stall_data_hazard: u64,
    /// Data-hazard cycles where the stalled instruction was a checkpoint.
    pub stall_ckpt_hazard: u64,
    /// Cycles lost to the single memory port.
    pub stall_mem_port: u64,
    /// Cycles lost waiting for RBB room at a boundary.
    pub stall_rbb_full: u64,
    /// Cycles spent in recovery (flush + recovery block execution).
    pub recovery_cycles: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic regular stores.
    pub stores: u64,
    /// Dynamic checkpoint stores.
    pub ckpts: u64,
    /// Regular stores fast-released via the WAR-free path.
    pub war_free_released: u64,
    /// Checkpoints fast-released via coloring.
    pub colored_released: u64,
    /// Stores (regular + checkpoint) quarantined in the SB.
    pub quarantined: u64,
    /// Quarantined stores that coalesced into an existing SB entry.
    pub sb_coalesced: u64,
    /// SB entries discarded (squashed) by error recovery.
    pub sb_discarded: u64,
    /// Region boundaries committed.
    pub boundaries: u64,
    /// Errors detected (sensor or parity).
    pub detections: u64,
    /// Detections raised by register parity / hardened-path checks on
    /// access (before the acoustic sensor reported the strike).
    pub parity_detections: u64,
    /// Detections raised by the acoustic sensor (WCDL-bounded).
    pub sensor_detections: u64,
    /// Recoveries executed.
    pub recoveries: u64,
    /// Average dynamic instructions per region (Fig 26).
    pub avg_region_insts: f64,
    /// CLQ statistics (Figs 14/15/24/25).
    pub clq: ClqStats,
    /// (L1 hits, L1 misses, L2 hits, L2 misses).
    pub cache: (u64, u64, u64, u64),
    /// Peak SB occupancy.
    pub sb_peak: usize,
    /// Sum of dynamic instruction counts over completed regions — the
    /// numerator behind [`avg_region_insts`](Self::avg_region_insts),
    /// carried separately so the campaign early-exit replay can synthesize
    /// the average exactly. Excluded from [`to_json`](Self::to_json) and
    /// [`to_metrics`](Self::to_metrics).
    pub rbb_insts_sum: u64,
    /// Completed-region count — the denominator behind
    /// [`avg_region_insts`](Self::avg_region_insts); same carry role and
    /// exclusions as [`rbb_insts_sum`](Self::rbb_insts_sum).
    pub rbb_completed: u64,
    /// Latency distributions; `None` unless the run enabled
    /// [`SimConfig::histograms`](crate::SimConfig::histograms).
    pub hists: Option<Box<SimHists>>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Fraction of dynamic instructions that are checkpoints (Fig 4).
    pub fn ckpt_ratio(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.ckpts as f64 / self.insts as f64
        }
    }

    /// Total dynamic stores including checkpoints.
    pub fn all_stores(&self) -> u64 {
        self.stores + self.ckpts
    }

    /// Fraction of all stores released without verification
    /// (WAR-free + colored).
    pub fn bypass_ratio(&self) -> f64 {
        let all = self.all_stores();
        if all == 0 {
            0.0
        } else {
            (self.war_free_released + self.colored_released) as f64 / all as f64
        }
    }

    /// Export the run's totals as a metrics registry (`sim.*` keys).
    ///
    /// `SimStats` stays the dense accumulator the pipeline hot loop bumps;
    /// this projection is how everything downstream (drivers, campaigns,
    /// figure generators) reads the numbers. The derived-ratio helpers on
    /// [`turnpike_metrics::MetricSet`] use the same formulas as the ones
    /// here, so either view reports identical values.
    pub fn to_metrics(&self) -> turnpike_metrics::MetricSet {
        use turnpike_metrics::{Counter, Gauge, Hist, MetricSet};
        let mut m = MetricSet::new();
        m.add(Counter::Cycles, self.cycles);
        m.add(Counter::Insts, self.insts);
        m.add(Counter::StallSbFull, self.stall_sb_full);
        m.add(Counter::StallDataHazard, self.stall_data_hazard);
        m.add(Counter::StallCkptHazard, self.stall_ckpt_hazard);
        m.add(Counter::StallMemPort, self.stall_mem_port);
        m.add(Counter::StallRbbFull, self.stall_rbb_full);
        m.add(Counter::RecoveryCycles, self.recovery_cycles);
        m.add(Counter::Loads, self.loads);
        m.add(Counter::Stores, self.stores);
        m.add(Counter::Ckpts, self.ckpts);
        m.add(Counter::WarFreeReleased, self.war_free_released);
        m.add(Counter::ColoredReleased, self.colored_released);
        m.add(Counter::Quarantined, self.quarantined);
        m.add(Counter::SbCoalesced, self.sb_coalesced);
        m.add(Counter::SbDiscarded, self.sb_discarded);
        m.add(Counter::RegionsCommitted, self.boundaries);
        m.add(Counter::Detections, self.detections);
        m.add(Counter::ParityDetections, self.parity_detections);
        m.add(Counter::SensorDetections, self.sensor_detections);
        m.add(Counter::Recoveries, self.recoveries);
        m.record_peak(Counter::SbPeak, self.sb_peak as u64);
        m.add(Counter::ClqStoresChecked, self.clq.stores_checked);
        m.add(Counter::ClqWarFree, self.clq.war_free);
        m.add(Counter::ClqLoadsRecorded, self.clq.loads_recorded);
        m.add(Counter::ClqOverflows, self.clq.overflows);
        m.add(Counter::ClqOccupancySum, self.clq.occupancy_sum);
        m.add(Counter::ClqOccupancySamples, self.clq.occupancy_samples);
        m.record_peak(Counter::ClqPeakEntries, u64::from(self.clq.peak_entries));
        let (l1h, l1m, l2h, l2m) = self.cache;
        m.add(Counter::L1Hits, l1h);
        m.add(Counter::L1Misses, l1m);
        m.add(Counter::L2Hits, l2h);
        m.add(Counter::L2Misses, l2m);
        m.set_gauge(Gauge::AvgRegionInsts, self.avg_region_insts);
        if let Some(h) = &self.hists {
            m.set_hist(Hist::SbResidency, h.sb_residency.clone());
            m.set_hist(Hist::VerifyLatency, h.verify_latency.clone());
            m.set_hist(Hist::DetectLatency, h.detect_latency.clone());
            m.set_hist(Hist::RecoveryPenalty, h.recovery_penalty.clone());
        }
        m
    }

    /// Render the run totals as one compact JSON object with a fixed key
    /// order — the serialization the serving layer's artifact store persists
    /// for `run` jobs. Key order is part of the schema: byte-identical
    /// replay across processes is what makes store entries diffable against
    /// freshly computed results. Latency histograms are intentionally
    /// omitted; they live in the metrics registry, and the store payload is
    /// the architectural result.
    pub fn to_json(&self) -> String {
        let (l1h, l1m, l2h, l2m) = self.cache;
        format!(
            "{{\"cycles\":{},\"insts\":{},\"ipc\":{:.6},\"stall_sb_full\":{},\
             \"stall_data_hazard\":{},\"stall_ckpt_hazard\":{},\"stall_mem_port\":{},\
             \"stall_rbb_full\":{},\"recovery_cycles\":{},\"loads\":{},\"stores\":{},\
             \"ckpts\":{},\"war_free_released\":{},\"colored_released\":{},\
             \"quarantined\":{},\"sb_coalesced\":{},\"sb_discarded\":{},\
             \"boundaries\":{},\"detections\":{},\"parity_detections\":{},\
             \"sensor_detections\":{},\"recoveries\":{},\"avg_region_insts\":{:.6},\
             \"clq\":{{\"stores_checked\":{},\"war_free\":{},\"loads_recorded\":{},\
             \"overflows\":{},\"peak_entries\":{}}},\
             \"cache\":{{\"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\"l2_misses\":{}}},\
             \"sb_peak\":{}}}",
            self.cycles,
            self.insts,
            self.ipc(),
            self.stall_sb_full,
            self.stall_data_hazard,
            self.stall_ckpt_hazard,
            self.stall_mem_port,
            self.stall_rbb_full,
            self.recovery_cycles,
            self.loads,
            self.stores,
            self.ckpts,
            self.war_free_released,
            self.colored_released,
            self.quarantined,
            self.sb_coalesced,
            self.sb_discarded,
            self.boundaries,
            self.detections,
            self.parity_detections,
            self.sensor_detections,
            self.recoveries,
            self.avg_region_insts,
            self.clq.stores_checked,
            self.clq.war_free,
            self.clq.loads_recorded,
            self.clq.overflows,
            self.clq.peak_entries,
            l1h,
            l1m,
            l2h,
            l2m,
            self.sb_peak,
        )
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles {} insts {} (ipc {:.2})",
            self.cycles,
            self.insts,
            self.ipc()
        )?;
        writeln!(
            f,
            "stalls: sb_full {} data {} (ckpt {}) mem_port {} rbb {} recovery {}",
            self.stall_sb_full,
            self.stall_data_hazard,
            self.stall_ckpt_hazard,
            self.stall_mem_port,
            self.stall_rbb_full,
            self.recovery_cycles
        )?;
        writeln!(
            f,
            "mem: {} loads, {} stores, {} ckpts; bypass {:.1}% (war-free {}, colored {}), quarantined {}",
            self.loads,
            self.stores,
            self.ckpts,
            self.bypass_ratio() * 100.0,
            self.war_free_released,
            self.colored_released,
            self.quarantined
        )?;
        write!(
            f,
            "regions: {} boundaries, {:.1} insts/region; {} detections, {} recoveries",
            self.boundaries, self.avg_region_insts, self.detections, self.recoveries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = SimStats {
            cycles: 100,
            insts: 150,
            ckpts: 30,
            stores: 30,
            war_free_released: 15,
            colored_released: 15,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.ckpt_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(s.all_stores(), 60);
        assert!((s.bypass_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_projection_matches_fields() {
        use turnpike_metrics::{Counter, Gauge};
        let s = SimStats {
            cycles: 100,
            insts: 150,
            ckpts: 30,
            stores: 30,
            war_free_released: 15,
            colored_released: 15,
            sb_peak: 3,
            avg_region_insts: 12.5,
            cache: (7, 1, 1, 0),
            clq: ClqStats {
                stores_checked: 20,
                war_free: 15,
                occupancy_sum: 8,
                occupancy_samples: 4,
                peak_entries: 2,
                ..ClqStats::default()
            },
            ..SimStats::default()
        };
        let m = s.to_metrics();
        assert_eq!(m.counter(Counter::Cycles), s.cycles);
        assert_eq!(m.counter(Counter::SbPeak), s.sb_peak as u64);
        assert_eq!(m.counter(Counter::L1Hits), 7);
        assert_eq!(m.gauge(Gauge::AvgRegionInsts), s.avg_region_insts);
        // The registry's derived helpers agree with the fixed-field ones.
        assert_eq!(m.ipc(), s.ipc());
        assert_eq!(m.ckpt_ratio(), s.ckpt_ratio());
        assert_eq!(m.all_stores(), s.all_stores());
        assert_eq!(m.bypass_ratio(), s.bypass_ratio());
        assert_eq!(m.clq_avg_entries(), s.clq.avg_entries());
        assert_eq!(m.clq_war_free_ratio(), s.clq.war_free_ratio());
    }

    #[test]
    fn zero_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.ckpt_ratio(), 0.0);
        assert_eq!(s.bypass_ratio(), 0.0);
        assert!(s.to_string().contains("cycles 0"));
    }

    #[test]
    fn json_is_single_line_with_stable_keys() {
        let s = SimStats {
            cycles: 100,
            insts: 150,
            cache: (7, 1, 1, 0),
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(!j.contains('\n'), "artifact payloads are one line");
        assert!(j.starts_with("{\"cycles\":100,\"insts\":150,\"ipc\":1.500000,"));
        assert!(j.contains("\"clq\":{\"stores_checked\":0,"));
        assert!(j.contains("\"cache\":{\"l1_hits\":7,\"l1_misses\":1,"));
        assert!(j.ends_with("\"sb_peak\":0}"));
        // Byte-stable across calls: the store diffs entries byte-for-byte.
        assert_eq!(j, s.to_json());
    }
}
