//! Cross-crate resilience invariants: zero SDC under fault injection, and
//! the performance orderings the paper's figures rest on.

use turnpike::resilience::{fault_campaign, geomean, run_kernel, CampaignConfig, RunSpec, Scheme};
use turnpike::workloads::{all_kernels, Scale};

#[test]
fn turnpike_is_sdc_free_across_the_catalog() {
    // Every 3rd kernel to keep runtime sane; rotation covers all templates.
    for (i, k) in all_kernels(Scale::Smoke).iter().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let report = fault_campaign(
            &k.program,
            &RunSpec::new(Scheme::Turnpike),
            &CampaignConfig {
                runs: 6,
                seed: 0xA11CE + i as u64,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert!(report.sdc_free(), "{}: {report:?}", k.name);
    }
}

#[test]
fn turnstile_is_sdc_free_across_the_catalog() {
    for (i, k) in all_kernels(Scale::Smoke).iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        let report = fault_campaign(
            &k.program,
            &RunSpec::new(Scheme::Turnstile),
            &CampaignConfig {
                runs: 5,
                seed: 0xBEE + i as u64,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert!(report.sdc_free(), "{}: {report:?}", k.name);
    }
}

#[test]
fn ladder_rungs_are_sdc_free_on_a_sample() {
    let kernels = all_kernels(Scale::Smoke);
    let k = &kernels[7]; // leslie3d: stencil with stores and pressure
    for scheme in Scheme::LADDER {
        let report = fault_campaign(
            &k.program,
            &RunSpec::new(scheme),
            &CampaignConfig {
                runs: 5,
                seed: 77,
                strikes_per_run: 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        assert!(report.sdc_free(), "{scheme:?}: {report:?}");
    }
}

#[test]
fn bursts_of_strikes_recover() {
    let kernels = all_kernels(Scale::Smoke);
    let k = &kernels[1]; // bwaves: store-heavy
    let report = fault_campaign(
        &k.program,
        &RunSpec::new(Scheme::Turnpike),
        &CampaignConfig {
            runs: 4,
            seed: 5,
            strikes_per_run: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.sdc_free(), "{report:?}");
    assert!(report.recoveries > 0);
}

#[test]
fn turnpike_dominates_turnstile_in_geomean() {
    let kernels = all_kernels(Scale::Smoke);
    let mut ts = Vec::new();
    let mut tp = Vec::new();
    for k in &kernels {
        let base = run_kernel(&k.program, &RunSpec::new(Scheme::Baseline)).unwrap();
        let b = base.outcome.stats.cycles as f64;
        let t1 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile)).unwrap();
        let t2 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnpike)).unwrap();
        ts.push(t1.outcome.stats.cycles as f64 / b);
        tp.push(t2.outcome.stats.cycles as f64 / b);
    }
    let (g_ts, g_tp) = (geomean(&ts), geomean(&tp));
    assert!(g_tp < g_ts, "turnpike {g_tp:.3} vs turnstile {g_ts:.3}");
    assert!(g_ts > 1.05, "turnstile should cost >5%: {g_ts:.3}");
    assert!(g_tp < 1.15, "turnpike should stay light: {g_tp:.3}");
}

#[test]
fn overhead_grows_with_wcdl_for_turnstile() {
    let kernels = all_kernels(Scale::Smoke);
    let mut prev = 0.0;
    for wcdl in [10u64, 30, 50] {
        let mut xs = Vec::new();
        for k in kernels.iter().step_by(4) {
            let base = run_kernel(&k.program, &RunSpec::new(Scheme::Baseline)).unwrap();
            let t =
                run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile).with_wcdl(wcdl)).unwrap();
            xs.push(t.outcome.stats.cycles as f64 / base.outcome.stats.cycles as f64);
        }
        let g = geomean(&xs);
        assert!(g > prev, "wcdl {wcdl}: {g:.3} !> {prev:.3}");
        prev = g;
    }
}

#[test]
fn turnpike_scales_with_wcdl_no_worse_than_turnstile() {
    let kernels = all_kernels(Scale::Smoke);
    let mut slopes = (Vec::new(), Vec::new());
    for k in kernels.iter().step_by(5) {
        let s10 = |s: Scheme| {
            run_kernel(&k.program, &RunSpec::new(s).with_wcdl(10))
                .unwrap()
                .outcome
                .stats
                .cycles as f64
        };
        let s50 = |s: Scheme| {
            run_kernel(&k.program, &RunSpec::new(s).with_wcdl(50))
                .unwrap()
                .outcome
                .stats
                .cycles as f64
        };
        slopes
            .0
            .push(s50(Scheme::Turnstile) / s10(Scheme::Turnstile));
        slopes.1.push(s50(Scheme::Turnpike) / s10(Scheme::Turnpike));
    }
    assert!(
        geomean(&slopes.1) <= geomean(&slopes.0) + 1e-9,
        "turnpike WCDL slope {:.3} vs turnstile {:.3}",
        geomean(&slopes.1),
        geomean(&slopes.0)
    );
}

#[test]
fn bigger_sb_helps_turnstile() {
    let kernels = all_kernels(Scale::Smoke);
    let mut small = Vec::new();
    let mut large = Vec::new();
    for k in kernels.iter().step_by(4) {
        let base = run_kernel(&k.program, &RunSpec::new(Scheme::Baseline)).unwrap();
        let b = base.outcome.stats.cycles as f64;
        let s4 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile).with_sb(4)).unwrap();
        let s40 = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile).with_sb(40)).unwrap();
        small.push(s4.outcome.stats.cycles as f64 / b);
        large.push(s40.outcome.stats.cycles as f64 / b);
    }
    assert!(
        geomean(&large) < geomean(&small),
        "SB-40 {:.3} should beat SB-4 {:.3}",
        geomean(&large),
        geomean(&small)
    );
}

#[test]
fn fast_release_reduces_quarantine_traffic() {
    let kernels = all_kernels(Scale::Smoke);
    for k in kernels.iter().step_by(6) {
        let ts = run_kernel(&k.program, &RunSpec::new(Scheme::Turnstile)).unwrap();
        let fr = run_kernel(&k.program, &RunSpec::new(Scheme::FastRelease)).unwrap();
        assert!(
            fr.outcome.stats.quarantined <= ts.outcome.stats.quarantined,
            "{}: fast release must not quarantine more ({} vs {})",
            k.name,
            fr.outcome.stats.quarantined,
            ts.outcome.stats.quarantined
        );
    }
}
