//! Dead code elimination.
//!
//! Removes pure instructions whose results are never used. Run after LIVM to
//! sweep the merged induction variable's now-dead initialization and
//! increment.

use turnpike_ir::{Cfg, Function, Inst, Liveness};

/// Remove dead pure instructions. Returns the number removed.
///
/// An instruction is dead when it defines a register that is not live
/// immediately after it and it has no side effects (loads are treated as
/// pure: the memory model has no volatile locations).
pub fn dce(f: &mut Function) -> u32 {
    let mut removed = 0;
    loop {
        let cfg = Cfg::compute(f);
        let live = Liveness::compute(f, &cfg);
        let mut changed = false;
        for b in 0..f.blocks.len() {
            let id = turnpike_ir::BlockId(b as u32);
            // Walk backward keeping a running live set.
            let mut live_now = live.live_out(id).clone();
            for u in f.blocks[b].term.uses() {
                live_now.insert(u);
            }
            for i in (0..f.blocks[b].insts.len()).rev() {
                let inst = f.blocks[b].insts[i];
                let dead = match inst {
                    Inst::Bin { dst, .. }
                    | Inst::Cmp { dst, .. }
                    | Inst::Mov { dst, .. }
                    | Inst::Load { dst, .. } => !live_now.contains(dst),
                    _ => false,
                };
                if dead {
                    f.blocks[b].insts[i] = Inst::Nop;
                    removed += 1;
                    changed = true;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live_now.remove(d);
                }
                for u in inst.uses() {
                    live_now.insert(u);
                }
            }
        }
        f.sweep_nops();
        if !changed {
            break;
        }
    }
    removed
}

/// Dead code elimination as a standalone pipeline [`crate::pass::Pass`].
///
/// The stock pipeline runs DCE fused into [`crate::livm::LivmPass`]; this
/// standalone pass exists for custom pass lists and debugging sessions.
pub struct DcePass;

impl crate::pass::Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        _cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        dce(&mut prog.func);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{FunctionBuilder, Operand};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("d");
        let x = b.fresh_reg();
        let y = b.fresh_reg();
        let z = b.fresh_reg();
        b.mov(x, 1i64);
        b.add(y, x, 2i64); // dead (z dead, y only feeds z)
        b.add(z, y, 3i64); // dead
        b.mov(x, 5i64);
        b.ret(Some(Operand::Reg(x)));
        let mut f = b.finish().unwrap();
        let n = dce(&mut f);
        assert_eq!(n, 3); // first mov x, add y, add z all dead
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_stores_and_ckpts() {
        let mut b = FunctionBuilder::new("k");
        let x = b.fresh_reg();
        b.mov(x, 1i64);
        b.store_abs(x, 0x1000);
        b.inst(turnpike_ir::Inst::Ckpt { reg: x });
        b.ret(None);
        let mut f = b.finish().unwrap();
        assert_eq!(dce(&mut f), 0);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn keeps_loop_carried_values() {
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        let mut f = b.finish().unwrap();
        assert_eq!(dce(&mut f), 0);
    }
}
