//! Criterion micro-benchmarks: simulator throughput per scheme.
//!
//! These measure the *reproduction's* performance (host-seconds per
//! simulated kernel), complementing the `reproduce` binary which measures
//! the *simulated* cycles the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turnpike_resilience::{run_kernel, RunSpec, Scheme};
use turnpike_workloads::{kernel_by_name, Scale, Suite};

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for (suite, name) in [
        (Suite::Cpu2006, "bwaves"),
        (Suite::Cpu2006, "hmmer"),
        (Suite::Cpu2017, "leela"),
    ] {
        let kernel = kernel_by_name(suite, name, Scale::Smoke).expect("kernel exists");
        for scheme in [Scheme::Baseline, Scheme::Turnstile, Scheme::Turnpike] {
            group.bench_with_input(
                BenchmarkId::new(format!("{scheme:?}"), name),
                &kernel,
                |b, k| {
                    b.iter(|| run_kernel(&k.program, &RunSpec::new(scheme)).expect("runs"));
                },
            );
        }
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    use turnpike_resilience::{fault_campaign, CampaignConfig};
    let mut group = c.benchmark_group("fault_campaign");
    group.sample_size(10);
    let kernel = kernel_by_name(Suite::Cpu2006, "leslie3d", Scale::Smoke).expect("kernel exists");
    group.bench_function("turnpike_5_strikes", |b| {
        b.iter(|| {
            fault_campaign(
                &kernel.program,
                &RunSpec::new(Scheme::Turnpike),
                &CampaignConfig {
                    runs: 5,
                    seed: 1,
                    strikes_per_run: 1,
                    ..Default::default()
                },
            )
            .expect("campaign runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_campaign);
criterion_main!(benches);
