//! Legalization: rewrite IR forms the machine cannot encode.
//!
//! The target machine requires the left operand of `Bin`/`Cmp` to be a
//! register and limits immediate-operand stores to 8-bit values, so this pass
//! (1) constant-folds all-immediate operations, (2) swaps commutative (or
//! mirrors comparison) operands, (3) materializes remaining immediates into
//! fresh registers, and (4) widens store immediates through a register.

use turnpike_ir::{BinOp, CmpOp, Function, Inst, Operand, Reg};

/// Whether a binary operation commutes.
fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// The comparison with operands swapped (`a op b` == `b mirror(op) a`).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Run legalization in place.
pub fn legalize(f: &mut Function) {
    for b in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[b].insts);
        let mut new = Vec::with_capacity(old.len());
        for inst in old {
            match inst {
                Inst::Bin { op, dst, lhs, rhs } => match (lhs, rhs) {
                    (Operand::Imm(a), Operand::Imm(bv)) => {
                        new.push(Inst::Mov {
                            dst,
                            src: Operand::Imm(op.eval(a, bv)),
                        });
                    }
                    (Operand::Imm(_), Operand::Reg(_)) if commutative(op) => {
                        new.push(Inst::Bin {
                            op,
                            dst,
                            lhs: rhs,
                            rhs: lhs,
                        });
                    }
                    (Operand::Imm(a), Operand::Reg(_)) => {
                        let t = fresh(f_regs(&mut f.num_regs));
                        new.push(Inst::Mov {
                            dst: t,
                            src: Operand::Imm(a),
                        });
                        new.push(Inst::Bin {
                            op,
                            dst,
                            lhs: Operand::Reg(t),
                            rhs,
                        });
                    }
                    _ => new.push(inst),
                },
                Inst::Cmp { op, dst, lhs, rhs } => match (lhs, rhs) {
                    (Operand::Imm(a), Operand::Imm(bv)) => {
                        new.push(Inst::Mov {
                            dst,
                            src: Operand::Imm(op.eval(a, bv)),
                        });
                    }
                    (Operand::Imm(_), Operand::Reg(_)) => {
                        new.push(Inst::Cmp {
                            op: mirror(op),
                            dst,
                            lhs: rhs,
                            rhs: lhs,
                        });
                    }
                    _ => new.push(inst),
                },
                Inst::Store { src, addr } => match src {
                    Operand::Imm(v) if i8::try_from(v).is_err() => {
                        let t = fresh(f_regs(&mut f.num_regs));
                        new.push(Inst::Mov {
                            dst: t,
                            src: Operand::Imm(v),
                        });
                        new.push(Inst::Store {
                            src: Operand::Reg(t),
                            addr,
                        });
                    }
                    _ => new.push(inst),
                },
                other => new.push(other),
            }
        }
        f.blocks[b].insts = new;
    }
}

fn f_regs(num_regs: &mut u32) -> &mut u32 {
    num_regs
}

fn fresh(num_regs: &mut u32) -> Reg {
    let r = Reg(*num_regs);
    *num_regs += 1;
    r
}

/// Machine-form canonicalization as a pipeline [`crate::pass::Pass`].
pub struct LegalizePass;

impl crate::pass::Pass for LegalizePass {
    fn name(&self) -> &'static str {
        "legalize"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        _cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        legalize(&mut prog.func);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{verify_function, BasicBlock, Terminator};

    fn wrap(insts: Vec<Inst>, num_regs: u32) -> Function {
        let mut f = Function::empty("t");
        f.num_regs = num_regs;
        f.blocks = vec![BasicBlock {
            insts,
            term: Terminator::Ret { value: None },
        }];
        f
    }

    #[test]
    fn folds_constant_ops() {
        let mut f = wrap(
            vec![Inst::Bin {
                op: BinOp::Add,
                dst: Reg(0),
                lhs: Operand::Imm(2),
                rhs: Operand::Imm(3),
            }],
            1,
        );
        legalize(&mut f);
        assert_eq!(
            f.blocks[0].insts,
            vec![Inst::Mov {
                dst: Reg(0),
                src: Operand::Imm(5)
            }]
        );
    }

    #[test]
    fn swaps_commutative_imm_lhs() {
        let mut f = wrap(
            vec![Inst::Bin {
                op: BinOp::Add,
                dst: Reg(0),
                lhs: Operand::Imm(7),
                rhs: Operand::Reg(Reg(1)),
            }],
            2,
        );
        legalize(&mut f);
        assert_eq!(
            f.blocks[0].insts,
            vec![Inst::Bin {
                op: BinOp::Add,
                dst: Reg(0),
                lhs: Operand::Reg(Reg(1)),
                rhs: Operand::Imm(7)
            }]
        );
    }

    #[test]
    fn materializes_noncommutative_imm_lhs() {
        let mut f = wrap(
            vec![Inst::Bin {
                op: BinOp::Sub,
                dst: Reg(0),
                lhs: Operand::Imm(7),
                rhs: Operand::Reg(Reg(1)),
            }],
            2,
        );
        legalize(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert_eq!(f.num_regs, 3);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Mov { dst: Reg(2), .. }
        ));
        verify_function(&f).unwrap();
    }

    #[test]
    fn mirrors_comparison() {
        let mut f = wrap(
            vec![Inst::Cmp {
                op: CmpOp::Lt,
                dst: Reg(0),
                lhs: Operand::Imm(5),
                rhs: Operand::Reg(Reg(1)),
            }],
            2,
        );
        legalize(&mut f);
        // 5 < r1  ==  r1 > 5
        assert_eq!(
            f.blocks[0].insts,
            vec![Inst::Cmp {
                op: CmpOp::Gt,
                dst: Reg(0),
                lhs: Operand::Reg(Reg(1)),
                rhs: Operand::Imm(5)
            }]
        );
    }

    #[test]
    fn widens_large_store_immediates() {
        let mut f = wrap(
            vec![Inst::Store {
                src: Operand::Imm(1000),
                addr: turnpike_ir::Addr::abs(0x1000),
            }],
            0,
        );
        legalize(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2);
        // Small immediates stay.
        let mut g = wrap(
            vec![Inst::Store {
                src: Operand::Imm(-5),
                addr: turnpike_ir::Addr::abs(0x1000),
            }],
            0,
        );
        legalize(&mut g);
        assert_eq!(g.blocks[0].insts.len(), 1);
    }

    #[test]
    fn mirror_semantics_match() {
        for op in CmpOp::ALL {
            for a in [-3i64, 0, 5] {
                for b in [-2i64, 0, 5] {
                    assert_eq!(op.eval(a, b), mirror(op).eval(b, a), "{op:?} {a} {b}");
                }
            }
        }
    }
}
