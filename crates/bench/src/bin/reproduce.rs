//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]
//! reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]
//! reproduce serve [--addr A] [--workers N] [--queue N] [--store DIR] [--flight-dir DIR] ...
//! reproduce submit [--addr A | --direct] [--progress] [--kind K] [job fields] ...
//! reproduce loadgen [--addr A] [--clients N] [--jobs N] [job fields] ...
//! reproduce coordinate --workers A,B,... [--shards N] [--progress] [job fields]
//! reproduce fleet-bench [--runs N] [--shards N] [--jobs N] [--rate R]
//! reproduce watch [--addr A | --workers A,B,...] [--interval-ms N] [--once]
//! reproduce telemetry [--smoke] [--runs N] [--seed N] [--stop-ci W]
//!                     [--records FILE [--max-records N]]
//! reproduce explore [--smoke|--full] [--threads N] [--workers A,B,...]
//!                   [--store DIR [--resume]] [--seed N] [--epsilon X] [--out FILE]
//! reproduce sim-throughput [--smoke] [--reps N]
//! reproduce --list
//!
//! targets: fig4 fig14 fig15 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26 table1 ablation clq colors summary
//!          adaptive all
//! ```
//!
//! `--list` prints every target with the paper figure/table it reproduces.
//! `--smoke` runs the reduced-size kernels (fast; used by CI); the default
//! is full evaluation scale. `--json` prints machine-readable output.
//! `--threads N` caps the evaluation engine's worker threads and must be
//! at least 1 (default: all hardware threads); stdout is byte-identical at
//! any thread count. `--no-cache` disables the engine's compile/run
//! memoization (the seed harness's behavior, kept for perf comparisons).
//!
//! `serve` runs the batch job server (`turnpike-serve`): line-delimited
//! JSON over TCP, bounded queue with typed `overloaded` rejections,
//! worker pool over the shared evaluation engine, optional persistent
//! artifact store (`--store DIR`, shared with `submit --direct`), graceful
//! drain on a client `shutdown` request. The bound address is printed to
//! stdout. `submit` sends one compile/run/campaign/figure job (or
//! `--stats`/`--shutdown`) and prints the result payload to stdout —
//! byte-identical whether served or executed locally via `--direct`.
//! `loadgen` saturates a server with `--clients` concurrent connections,
//! proves exactly-once delivery by tag accounting, and records
//! throughput plus p50/p99/p99.9 latency into `BENCH_reproduce.json`.
//!
//! `submit --progress` renders a live progress bar for campaign jobs —
//! run counts, SDC rate with its Wilson interval, windowed strikes/sec,
//! and an ETA, rewritten in place on a TTY. `watch` polls a running
//! server's `stats` and `metrics` (Prometheus text exposition) and prints
//! a queue/outcome/campaign-counter snapshot every `--interval-ms`
//! (`--once` for a single snapshot). `serve --flight-dir DIR` enables the
//! per-job flight recorder: failed, deadline-canceled, or
//! quarantine-tripping jobs dump their lifecycle event ring as
//! `DIR/job-<id>.jsonl` evidence.
//!
//! `telemetry` measures the telemetry spine itself: every Fig-21 ladder
//! rung's smoke campaign runs once untelemetered and once with streaming
//! progress snapshots, asserts the two `CampaignReport`s are bit-identical
//! (stdout shows only the deterministic reports — diffable across thread
//! counts), and records the wall-clock overhead as the `telemetry` block
//! of `BENCH_reproduce.json`. `--stop-ci W` additionally runs a
//! `StopRule::CiWidth` campaign that stops once the SDC-rate Wilson CI
//! half-width reaches `W`; `--records FILE` writes the ladder's strike
//! records as JSONL, reservoir-capped to `--max-records N`.
//!
//! `explore` sweeps the cross-layer design space (scheme x WCDL x SB size
//! x CLQ x colors x cache geometry, one declarative grid shared with the
//! paper's sweeps) through the staged explorer: smoke-scale screening of
//! every canonical point, epsilon-dominance pruning, then full-scale
//! promotion with CI-width sequential stopping on the fault-campaign
//! cells. The Pareto frontier over (runtime overhead, hardware cost, SDC
//! rate) prints as a figure on stdout and lands as a JSON artifact
//! (`--out`); both are byte-identical at any `--threads` count and
//! between direct execution and a `--workers` fleet. `--store DIR`
//! memoizes every job's payload; `--resume` re-runs a sweep against that
//! store, skipping everything already evaluated. The run records the
//! `explore` block (grid/pruning/job counts) in `BENCH_reproduce.json`.
//!
//! `trace` exports one kernel's resilience-event timeline under a scheme
//! (default `turnpike`; see `Scheme::cli_name` for the ladder names) as
//! Chrome trace-event JSON — load it in ui.perfetto.dev — or as raw JSONL.
//! Resilient schemes get one deterministic datapath strike at 25% of the
//! fault-free cycle count, so the export always shows a full
//! strike→detection→recovery arc.
//!
//! `sim-throughput` measures fault-free simulator speed (wall-clock
//! nanoseconds per retired instruction, interpreter vs. superblock
//! dispatch) over the whole kernel catalog and records the
//! `sim_throughput` block.
//!
//! Every generating invocation also records its perf block — target, scale,
//! threads, cache flag, total plus per-figure wall-clock milliseconds, and
//! a histogram summary block (p50/p99/max of SB residency, verification
//! latency, detection latency, recovery penalty, and compile/sim stage
//! times) — so harness performance is tracked over time.
//! `BENCH_reproduce.json` is a single JSON object keyed by block name
//! (`"all"`, `"fig21"`, `"loadgen"`, `"sim_throughput"`, ...); each writer
//! merges its block and preserves the others (see `report.rs`). Timing goes
//! there and to stderr, never to stdout.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use turnpike_bench::{
    coordinate, export_trace, fault_probe_metrics, find_kernel, hist_summary_json, json_string,
    target_by_name, write_block, CoordinateConfig, Engine, EngineExecutor, Table, Target,
    TraceFormat, TARGETS,
};
use turnpike_metrics::{Hist, MetricSet};
use turnpike_resilience::{par_map, RunSpec, Scheme};
use turnpike_serve::{
    loadgen, loadgen_fleet, Arrival, Client, FleetLoadgenConfig, JobKind, JobRequest,
    LoadgenConfig, Outcome, Server, ServerConfig, Store,
};
use turnpike_sim::{Core, Translation};
use turnpike_workloads::{all_kernels, Scale, Suite};

/// The target list rendered from the registry, one aligned line per target.
fn target_listing() -> String {
    let width = TARGETS
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(0)
        .max("all".len());
    let mut out = String::new();
    for t in &TARGETS {
        out.push_str(&format!("  {:width$}  {}\n", t.name, t.paper_ref));
    }
    out.push_str(&format!(
        "  {:width$}  every target above, in that order\n",
        "all"
    ));
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <target> [--smoke] [--json] [--threads N] [--no-cache]\n\
         \x20      reproduce trace <kernel> [--scheme S] [--smoke] [--format chrome|jsonl] [--out FILE]\n\
         \x20      reproduce serve [--addr A] [--workers N] [--queue N] [--timeout-secs N]\n\
         \x20                      [--store DIR [--store-cap BYTES]] [--flight-dir DIR]\n\
         \x20                      [--threads N] [--trace-out FILE]\n\
         \x20      reproduce submit [--addr A | --direct [--store DIR] [--threads N]] [--progress]\n\
         \x20                       [--kind K] [--kernel K] [--scheme S] [--scale smoke|full]\n\
         \x20                       [--sb N] [--wcdl N] [--runs N] [--seed N] [--strikes N]\n\
         \x20                       [--clq C] [--colors N] [--geom G] [--target T] [--tag T]\n\
         \x20      reproduce submit [--addr A] --stats|--shutdown\n\
         \x20      reproduce loadgen [--addr A] [--clients N] [--jobs N] [--max-retries N] [job fields]\n\
         \x20      reproduce coordinate --workers A,B,... [--shards N] [--max-retries N]\n\
         \x20                           [--progress] [job fields]\n\
         \x20      reproduce fleet-bench [--runs N] [--shards N] [--jobs N] [--rate R] [--seed N]\n\
         \x20      reproduce watch [--addr A | --workers A,B,...] [--interval-ms N] [--once]\n\
         \x20      reproduce telemetry [--smoke] [--kernel K] [--runs N] [--seed N] [--threads N]\n\
         \x20                          [--stop-ci W] [--records FILE [--max-records N]]\n\
         \x20      reproduce explore [--smoke|--full] [--threads N] [--workers A,B,...]\n\
         \x20                        [--store DIR [--resume]] [--seed N] [--epsilon X] [--out FILE]\n\
         \x20      reproduce sim-throughput [--smoke] [--reps N]\n\
         \x20      reproduce --list\n\
         options:\n\
         \x20 --threads N      evaluation worker threads, N >= 1 (default: all hardware threads)\n\
         \x20 --progress       live progress bar (rate +/- Wilson CI, strikes/s, ETA) for campaigns\n\
         \x20 --flight-dir D   dump failed/deadlined/quarantined jobs' lifecycle rings to D\n\
         \x20 --max-records N  reservoir-cap strike-record JSONL output (default: unbounded)\n\
         targets:\n{}",
        target_listing()
    );
    ExitCode::from(2)
}

/// Parse the value of `--threads`: a positive thread count, with a clear
/// message on anything else (`0` silently meaning "default" was a trap).
fn parse_threads(v: Option<&String>) -> Result<usize, ExitCode> {
    match v.map(|s| s.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(n),
        _ => {
            eprintln!(
                "reproduce: --threads must be an integer >= 1 \
                 (default: all hardware threads, {} here)",
                default_threads()
            );
            Err(ExitCode::from(2))
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `reproduce trace <kernel> [--scheme S] [--smoke|--full] [--format F]
/// [--out FILE]` — export one kernel's resilience-event timeline.
fn trace_main(args: &[String]) -> ExitCode {
    let mut kernel: Option<String> = None;
    let mut scheme = Scheme::Turnpike;
    let mut scale = Scale::Full;
    let mut format = TraceFormat::Chrome;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--scheme" => {
                let Some(s) = it.next().and_then(|v| Scheme::parse(v)) else {
                    eprintln!(
                        "reproduce trace: --scheme takes one of: {}",
                        [Scheme::Baseline]
                            .iter()
                            .chain(Scheme::LADDER.iter())
                            .map(|s| s.cli_name())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    return ExitCode::from(2);
                };
                scheme = s;
            }
            "--format" => {
                let Some(f) = it.next().and_then(|v| TraceFormat::parse(v)) else {
                    eprintln!("reproduce trace: --format takes 'chrome' or 'jsonl'");
                    return ExitCode::from(2);
                };
                format = f;
            }
            "--out" => {
                let Some(f) = it.next() else {
                    return usage();
                };
                out = Some(f.clone());
            }
            k if kernel.is_none() && !k.starts_with('-') => kernel = Some(k.to_string()),
            _ => return usage(),
        }
    }
    let Some(name) = kernel else {
        return usage();
    };
    let Some(k) = find_kernel(&name, scale) else {
        eprintln!("reproduce trace: unknown kernel '{name}'");
        return ExitCode::from(2);
    };
    let text = match export_trace(&k, &RunSpec::new(scheme), format) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reproduce trace: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("reproduce trace: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "# wrote {path} ({} bytes, {} scheme {}){}",
                text.len(),
                name,
                scheme.cli_name(),
                if format == TraceFormat::Chrome {
                    " — load it in ui.perfetto.dev"
                } else {
                    ""
                }
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Default server address shared by `submit` and `loadgen` (`serve`
/// defaults to port 0 — OS-assigned — and prints the bound address).
const DEFAULT_ADDR: &str = "127.0.0.1:8642";

/// Consume one job-shaped flag into `req`. `Ok(true)` when `flag` was a
/// job field (its value consumed), `Ok(false)` when it belongs to the
/// caller, `Err` on a bad value.
fn job_flag(req: &mut JobRequest, flag: &str, value: Option<&String>) -> Result<bool, String> {
    let need = |v: Option<&String>| v.cloned().ok_or_else(|| format!("{flag} needs a value"));
    let need_u64 = |v: Option<&String>| {
        need(v)?
            .parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer"))
    };
    match flag {
        "--kind" => {
            let v = need(value)?;
            req.kind = JobKind::parse(&v)
                .ok_or_else(|| format!("--kind takes compile|run|campaign|figure, got '{v}'"))?;
        }
        "--kernel" => req.kernel = need(value)?,
        "--scheme" => req.scheme = need(value)?,
        "--scale" => req.scale = need(value)?,
        "--sb" => {
            req.sb =
                u32::try_from(need_u64(value)?).map_err(|_| "--sb out of range".to_string())?;
        }
        "--wcdl" => req.wcdl = need_u64(value)?,
        "--runs" => req.runs = need_u64(value)?,
        "--seed" => req.seed = need_u64(value)?,
        "--strikes" => req.strikes = need_u64(value)?,
        "--target" => req.target = need(value)?,
        "--clq" => req.clq = need(value)?,
        "--colors" => {
            let v = need_u64(value)?;
            if v > 255 {
                return Err("--colors must be <= 255".to_string());
            }
            req.colors = v;
        }
        "--geom" => req.geom = need(value)?,
        "--tag" => req.tag = need(value)?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parse a byte budget: a plain integer, optionally suffixed `k`/`m`/`g`
/// (binary multiples, case-insensitive).
fn parse_bytes(v: &str) -> Option<u64> {
    let (digits, unit) = match v.char_indices().last()? {
        (i, c) if c.is_ascii_alphabetic() => (&v[..i], c.to_ascii_lowercase()),
        _ => (v, ' '),
    };
    let n: u64 = digits.parse().ok()?;
    let shift = match unit {
        ' ' => 0,
        'k' => 10,
        'm' => 20,
        'g' => 30,
        _ => return None,
    };
    n.checked_shl(shift)
}

/// `reproduce serve` — run the job server until a client sends `shutdown`.
fn serve_main(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut threads = default_threads();
    let mut store: Option<String> = None;
    let mut store_cap: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => config.addr = v.clone(),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => {
                    eprintln!("reproduce serve: --workers must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.queue_capacity = n,
                _ => {
                    eprintln!("reproduce serve: --queue must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--timeout-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.job_timeout = Duration::from_secs(n),
                _ => {
                    eprintln!("reproduce serve: --timeout-secs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--store" => match it.next() {
                Some(v) => store = Some(v.clone()),
                None => return usage(),
            },
            "--store-cap" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) if n >= 1 => store_cap = Some(n),
                _ => {
                    eprintln!(
                        "reproduce serve: --store-cap takes a byte budget \
                         (plain bytes or k/m/g suffix), e.g. 256m"
                    );
                    return ExitCode::from(2);
                }
            },
            "--flight-dir" => match it.next() {
                Some(v) => config.flight_dir = Some(v.into()),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(v) => config.trace_path = Some(v.into()),
                None => return usage(),
            },
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            _ => return usage(),
        }
    }
    if store_cap.is_some() && store.is_none() {
        eprintln!("reproduce serve: --store-cap requires --store DIR");
        return ExitCode::from(2);
    }
    let mut executor = EngineExecutor::new(Engine::new(threads));
    if let Some(dir) = &store {
        executor = executor.with_store(Store::open(dir));
    }
    if let Some(cap) = store_cap {
        executor = executor.with_store_cap(cap);
    }
    let server = match Server::start(config.clone(), std::sync::Arc::new(executor)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reproduce serve: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    // The bound address goes to stdout (and nothing else does) so scripts
    // using --addr 127.0.0.1:0 can discover the OS-assigned port.
    println!("serving {}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serve: {} workers, queue {}, timeout {}s, {} engine threads, store {}, flight {}",
        config.workers,
        config.queue_capacity,
        config.job_timeout.as_secs(),
        threads,
        match (&store, store_cap) {
            (Some(dir), Some(cap)) => format!("{dir} (cap {cap} bytes)"),
            (Some(dir), None) => dir.clone(),
            (None, _) => "off".to_string(),
        },
        config
            .flight_dir
            .as_deref()
            .map_or("off", |p| p.to_str().unwrap_or("on")),
    );
    server.join();
    eprintln!("# serve: drained and shut down");
    ExitCode::SUCCESS
}

/// `reproduce submit` — send one job (or `--stats`/`--shutdown`) to a
/// server, or run it locally with `--direct` through the exact same
/// executor and artifact store.
fn submit_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut req = JobRequest::new(JobKind::Run);
    let mut direct = false;
    let mut store: Option<String> = None;
    let mut threads = default_threads();
    let mut stats = false;
    let mut shutdown = false;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--direct" => direct = true,
            "--progress" => progress = true,
            "--store" => match it.next() {
                Some(v) => store = Some(v.clone()),
                None => return usage(),
            },
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            _ => {
                // Two-phase because job_flag consumes the value.
                let value = if flag.starts_with("--") {
                    it.clone().next()
                } else {
                    None
                };
                match job_flag(&mut req, flag, value) {
                    Ok(true) => {
                        it.next();
                    }
                    Ok(false) | Err(_) if flag == "--help" => return usage(),
                    Ok(false) => return usage(),
                    Err(e) => {
                        eprintln!("reproduce submit: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    if stats || shutdown {
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("reproduce submit: connect {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let done = if stats {
            client.stats().map(|body| println!("{body}"))
        } else {
            client
                .shutdown()
                .map(|()| eprintln!("# server is shutting down"))
        };
        return match done {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("reproduce submit: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if direct {
        let mut executor = EngineExecutor::new(Engine::new(threads));
        if let Some(dir) = &store {
            executor = executor.with_store(Store::open(dir));
        }
        return match executor.execute_direct(&req) {
            Ok(out) => {
                println!("{}", out.result);
                eprintln!("# store: {}", out.store.name());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("reproduce submit: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("reproduce submit: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --progress rewrites one live line in place on a TTY (bare per-run
    // ticks included); piped stderr gets only the estimator-bearing
    // snapshots, one line each, so logs stay bounded.
    let tty = std::io::IsTerminal::is_terminal(&std::io::stderr());
    let mut rendered_live = false;
    let on_progress = |done: u64, total: u64, stats: Option<&turnpike_serve::ProgressStats>| {
        if !progress {
            eprintln!("# progress: {done}/{total}");
            return;
        }
        let line = turnpike_bench::progress_line(done, total, stats);
        if tty {
            eprint!("\r\x1b[2K{line}");
            rendered_live = true;
        } else if stats.is_some() || done == total {
            eprintln!("# {line}");
        }
    };
    let outcome = client.submit_streaming(&req, on_progress);
    if rendered_live {
        eprintln!();
    }
    match outcome {
        Ok(Outcome::Done { job, store, result }) => {
            println!("{result}");
            eprintln!("# job {job} done, store: {store}");
            ExitCode::SUCCESS
        }
        Ok(Outcome::Overloaded { retry_after_ms }) => {
            eprintln!("reproduce submit: server overloaded, retry after {retry_after_ms} ms");
            ExitCode::from(3)
        }
        Ok(Outcome::ShuttingDown) => {
            eprintln!("reproduce submit: server is shutting down");
            ExitCode::FAILURE
        }
        Ok(Outcome::Error { job, message }) => {
            eprintln!("reproduce submit: job {job}: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("reproduce submit: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `reproduce loadgen` — N concurrent clients against a server; prints the
/// report and records throughput/latency percentiles in
/// `BENCH_reproduce.json`. Fails if any job was lost or duplicated.
fn loadgen_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cfg = LoadgenConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.clients = n,
                _ => {
                    eprintln!("reproduce loadgen: --clients must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.jobs_per_client = n,
                _ => {
                    eprintln!("reproduce loadgen: --jobs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--max-retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.max_retries = n,
                None => {
                    eprintln!("reproduce loadgen: --max-retries must be an integer");
                    return ExitCode::from(2);
                }
            },
            _ => {
                let value = if flag.starts_with("--") {
                    it.clone().next()
                } else {
                    None
                };
                match job_flag(&mut cfg.request, flag, value) {
                    Ok(true) => {
                        it.next();
                    }
                    Ok(false) => return usage(),
                    Err(e) => {
                        eprintln!("reproduce loadgen: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    let sock_addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(a) => a,
        None => {
            eprintln!("reproduce loadgen: bad address '{addr}'");
            return ExitCode::from(2);
        }
    };
    let report = match loadgen(sock_addr, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    println!("{json}");
    eprintln!(
        "# loadgen: {} clients x {} jobs, {} completed, {} overloaded rejections, \
         {:.1} jobs/s, p50 {} us, p99 {} us",
        cfg.clients,
        cfg.jobs_per_client,
        report.completed,
        report.overloaded,
        report.throughput(),
        report.latency.quantile(0.50).round() as u64,
        report.latency.quantile(0.99).round() as u64,
    );
    let record = format!(
        "{{\n  \"target\": \"loadgen\",\n  \"addr\": {},\n  \"clients\": {},\n  \
         \"jobs_per_client\": {},\n  \"report\": {}\n}}",
        json_string(&addr),
        cfg.clients,
        cfg.jobs_per_client,
        json
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "loadgen", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    if report.lost > 0 || report.duplicated > 0 || report.errors > 0 {
        eprintln!(
            "reproduce loadgen: delivery violated exactly-once ({} lost, {} duplicated, {} errors)",
            report.lost, report.duplicated, report.errors
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `reproduce watch [--addr A] [--interval-ms N] [--once]` — poll a
/// running server's `stats` snapshot and `metrics` exposition, printing a
/// compact health summary per tick (see `watch.rs` for the renderer).
fn watch_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut workers: Option<String> = None;
    let mut interval_ms = 1000u64;
    let mut once = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--workers" => match it.next() {
                Some(v) => workers = Some(v.clone()),
                None => return usage(),
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 50 => interval_ms = n,
                _ => {
                    eprintln!("reproduce watch: --interval-ms must be an integer >= 50");
                    return ExitCode::from(2);
                }
            },
            "--once" => once = true,
            _ => return usage(),
        }
    }
    // Fleet mode: one aggregated view over every worker per tick. A dead
    // worker is rendered as unreachable instead of failing the watch —
    // seeing the hole in the fleet is exactly what the operator wants.
    if let Some(list) = &workers {
        let addrs: Vec<String> = list.split(',').map(str::to_string).collect();
        loop {
            let snapshot: Vec<(String, Result<String, String>)> = addrs
                .iter()
                .map(|a| {
                    let stats = Client::connect(a)
                        .and_then(|mut c| c.stats())
                        .map_err(|e| e.to_string());
                    (a.clone(), stats)
                })
                .collect();
            print!("{}", turnpike_bench::render_fleet_watch(&snapshot));
            if once {
                return ExitCode::SUCCESS;
            }
            println!("---");
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    }
    loop {
        let snapshot = Client::connect(&addr).and_then(|mut c| {
            let stats = c.stats()?;
            let metrics = c.metrics()?;
            Ok(turnpike_bench::render_watch(&stats, &metrics))
        });
        match snapshot {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("reproduce watch: {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        println!("---");
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// `reproduce coordinate` — shard one campaign by run-index range across
/// a fleet of `reproduce serve` workers and print the merged payload,
/// byte-identical to running the same campaign in a single process. A
/// worker that dies mid-campaign has its shard re-dispatched to the
/// survivors; only a fleet-wide failure (or a deterministic job error)
/// fails the coordination.
fn coordinate_main(args: &[String]) -> ExitCode {
    let mut workers_arg: Option<String> = None;
    let mut cfg = CoordinateConfig::default();
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        match flag {
            "--workers" => match it.next() {
                Some(v) => workers_arg = Some(v.clone()),
                None => return usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.shards = n,
                _ => {
                    eprintln!("reproduce coordinate: --shards must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--max-retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.max_retries = n,
                None => {
                    eprintln!("reproduce coordinate: --max-retries must be an integer");
                    return ExitCode::from(2);
                }
            },
            "--progress" => progress = true,
            _ => {
                let value = if flag.starts_with("--") {
                    it.clone().next()
                } else {
                    None
                };
                match job_flag(&mut cfg.request, flag, value) {
                    Ok(true) => {
                        it.next();
                    }
                    Ok(false) => return usage(),
                    Err(e) => {
                        eprintln!("reproduce coordinate: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    let Some(workers_arg) = workers_arg else {
        eprintln!("reproduce coordinate: --workers host:port[,host:port...] is required");
        return ExitCode::from(2);
    };
    let mut workers = Vec::new();
    for part in workers_arg.split(',') {
        match std::net::ToSocketAddrs::to_socket_addrs(&part)
            .ok()
            .and_then(|mut a| a.next())
        {
            Some(a) => workers.push(a),
            None => {
                eprintln!("reproduce coordinate: bad worker address '{part}'");
                return ExitCode::from(2);
            }
        }
    }
    // Live progress only on a TTY: worker threads report concurrently and
    // a log file full of interleaved bar rewrites helps nobody.
    let tty = std::io::IsTerminal::is_terminal(&std::io::stderr());
    let on_progress = move |done: u64, total: u64| {
        if tty {
            eprint!(
                "\r\x1b[2K{}",
                turnpike_bench::progress_line(done, total, None)
            );
        }
    };
    let hook: Option<&(dyn Fn(u64, u64) + Sync)> = if progress { Some(&on_progress) } else { None };
    let report = match coordinate(&workers, &cfg, hook) {
        Ok(r) => r,
        Err(e) => {
            if progress && tty {
                eprintln!();
            }
            eprintln!("reproduce coordinate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if progress && tty {
        eprintln!();
    }
    // Stdout carries only the merged payload so scripts can byte-diff it
    // against `submit --direct` output.
    println!("{}", report.payload);
    eprintln!(
        "# coordinate: {} workers, {} shards ({} reassigned), {} runs in {} ms ({:.1} runs/s)",
        report.workers.len(),
        report.shards,
        report.reassigned,
        cfg.request.runs,
        report.wall_us / 1000,
        cfg.request.runs as f64 * 1.0e6 / report.wall_us.max(1) as f64,
    );
    for w in &report.workers {
        eprintln!(
            "#   {}  {} shards, {} runs{}",
            w.addr,
            w.shards_done,
            w.runs_done,
            if w.alive { "" } else { " (left the fleet)" }
        );
    }
    ExitCode::SUCCESS
}

/// `reproduce fleet-bench` — the distributed-execution benchmark behind
/// the `distributed` block of `BENCH_reproduce.json`.
///
/// Spins up in-process single-threaded workers so the measurement isolates
/// the *dispatch layer*: the same campaign is coordinated across 1 and
/// then 2 workers (the three payloads — direct, 1-worker, 2-worker — must
/// be byte-identical), and the wall-clock ratio is the fleet speedup. Then
/// an open-loop load generator (Poisson and bursty arrivals, seeded) drives
/// the 2-worker fleet and reports p50/p99/p99.9 latency measured from each
/// job's *scheduled* arrival — coordinated omission is counted, not hidden
/// — plus per-worker busy-time utilization.
fn fleet_bench_main(args: &[String]) -> ExitCode {
    let mut runs = 2048u64;
    let mut shards = 8usize;
    let mut jobs = 48usize;
    let mut rate = 60.0f64;
    let mut seed = 0xF1EE7u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => runs = n,
                _ => {
                    eprintln!("reproduce fleet-bench: --runs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("reproduce fleet-bench: --shards must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("reproduce fleet-bench: --jobs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--rate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => rate = r,
                _ => {
                    eprintln!("reproduce fleet-bench: --rate must be a positive jobs/s");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("reproduce fleet-bench: --seed must be an integer");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }

    // One engine thread per worker: fleet speedup must come from the
    // dispatch layer spreading shards, not from intra-worker parallelism.
    let start_worker = || {
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        Server::start(config, Arc::new(EngineExecutor::new(Engine::new(1))))
    };
    let stop_worker = |server: Server| {
        if let Ok(mut c) = Client::connect(server.addr()) {
            let _ = c.shutdown();
        }
        server.join();
    };

    let mut campaign = JobRequest::new(JobKind::Campaign);
    campaign.runs = runs;
    let direct = match EngineExecutor::new(Engine::new(1)).execute_direct(&campaign) {
        Ok(out) => out.result,
        Err(e) => {
            eprintln!("reproduce fleet-bench: direct campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The same sharded campaign against fleets of 1 and 2 workers.
    let mut walls = Vec::new();
    let mut payloads = Vec::new();
    for fleet_size in [1usize, 2] {
        let servers: Vec<Server> = match (0..fleet_size).map(|_| start_worker()).collect() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("reproduce fleet-bench: worker start failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let addrs: Vec<std::net::SocketAddr> = servers.iter().map(Server::addr).collect();
        let cfg = CoordinateConfig {
            request: campaign.clone(),
            shards,
            ..CoordinateConfig::default()
        };
        let report = match coordinate(&addrs, &cfg, None) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("reproduce fleet-bench: coordinate ({fleet_size}w) failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "# fleet-bench: campaign {runs} runs x {shards} shards on {fleet_size} worker(s): {} ms",
            report.wall_us / 1000
        );
        walls.push(report.wall_us);
        payloads.push(report.payload);
        for s in servers {
            stop_worker(s);
        }
    }
    let identical = payloads.iter().all(|p| *p == direct);
    if !identical {
        eprintln!("reproduce fleet-bench: distributed payloads diverged from the direct run");
        return ExitCode::FAILURE;
    }
    let speedup = walls[0] as f64 / walls[1].max(1) as f64;
    // The speedup is only meaningful with a core per worker: the block
    // records the host's parallelism so a 1-CPU CI container's ~1.0x is
    // read as a machine limit, not a dispatch-layer regression.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "# fleet-bench: payloads byte-identical, 2-worker speedup {speedup:.2}x ({cpus} cpus)"
    );
    if cpus < 2 {
        eprintln!("# fleet-bench: single-CPU host; a 2-worker fleet cannot beat one worker here");
    }

    // Open-loop load across a 2-worker fleet, Poisson then bursty.
    let servers: Vec<Server> = match (0..2).map(|_| start_worker()).collect() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reproduce fleet-bench: worker start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(Server::addr).collect();
    let mut fleet_reports = Vec::new();
    for arrival in [
        Arrival::Poisson { rate_per_s: rate },
        Arrival::Bursty {
            burst: 8,
            idle_ms: 100,
        },
    ] {
        let cfg = FleetLoadgenConfig {
            jobs,
            arrival,
            seed,
            request: JobRequest::new(JobKind::Run),
            max_retries: 1000,
        };
        match loadgen_fleet(&addrs, &cfg) {
            Ok(r) => {
                eprintln!(
                    "# fleet-bench: {} arrivals: {} jobs, {:.1} jobs/s, p99.9 {} us",
                    cfg.arrival.name(),
                    r.completed,
                    r.throughput(),
                    r.latency.quantile(0.999).round() as u64,
                );
                fleet_reports.push((cfg.arrival.name().to_string(), r.to_json()));
            }
            Err(e) => {
                eprintln!(
                    "reproduce fleet-bench: loadgen ({}) failed: {}",
                    cfg.arrival.name(),
                    e
                );
                return ExitCode::FAILURE;
            }
        }
    }
    for s in servers {
        stop_worker(s);
    }

    let mut record = format!(
        "{{\n  \"target\": \"fleet-bench\",\n  \"cpus\": {cpus},\n  \"campaign\": \
         {{\"runs\": {runs}, \"shards\": {shards}, \"wall_us_1w\": {}, \"wall_us_2w\": {}, \
         \"speedup_2w\": {speedup:.3}, \"identical\": {identical}}}",
        walls[0], walls[1]
    );
    for (name, json) in &fleet_reports {
        record.push_str(&format!(",\n  \"{name}\": {json}"));
    }
    record.push_str("\n}");
    if let Err(e) = write_block("BENCH_reproduce.json", "distributed", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}

/// `reproduce telemetry` — measure the telemetry spine itself. Every
/// Fig-21 ladder rung's campaign runs twice, untelemetered and with
/// streaming progress snapshots; the two reports must be bit-identical
/// (that is the spine's core guarantee) and the wall-clock delta is
/// recorded as the `telemetry` block of `BENCH_reproduce.json`.
///
/// Stdout carries only the deterministic per-rung reports (plus the
/// deterministic `--stop-ci` outcome), so CI can byte-diff it across
/// thread counts; timing goes to stderr and the JSON block.
fn telemetry_main(args: &[String]) -> ExitCode {
    use turnpike_metrics::RateEstimator;
    use turnpike_resilience::{
        fault_campaign_hooked, write_strike_records_capped_to_path, CampaignConfig, CampaignHook,
        CampaignProgress, StopRule,
    };

    let mut scale = Scale::Full;
    let mut kernel_name = "bwaves".to_string();
    let mut runs = 48usize;
    let mut seed = 7u64;
    let mut threads = default_threads();
    let mut stop_ci: Option<f64> = None;
    let mut records_path: Option<String> = None;
    let mut max_records: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--kernel" => match it.next() {
                Some(v) => kernel_name = v.clone(),
                None => return usage(),
            },
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => runs = n,
                _ => {
                    eprintln!("reproduce telemetry: --runs must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("reproduce telemetry: --seed must be an integer");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            "--stop-ci" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(w) if w > 0.0 && w < 0.5 => stop_ci = Some(w),
                _ => {
                    eprintln!("reproduce telemetry: --stop-ci must be a half-width in (0, 0.5)");
                    return ExitCode::from(2);
                }
            },
            "--records" => match it.next() {
                Some(v) => records_path = Some(v.clone()),
                None => return usage(),
            },
            "--max-records" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => max_records = Some(n),
                _ => {
                    eprintln!("reproduce telemetry: --max-records must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }
    let Some(kernel) = find_kernel(&kernel_name, scale) else {
        eprintln!("reproduce telemetry: unknown kernel '{kernel_name}'");
        return ExitCode::from(2);
    };
    let config = CampaignConfig {
        runs,
        seed,
        strikes_per_run: 1,
        ..Default::default()
    };
    eprintln!(
        "# telemetry: {kernel_name}, {} ladder rungs x {runs} runs, seed {seed}, {threads} threads",
        Scheme::LADDER.len()
    );
    let snapshots = std::sync::atomic::AtomicUsize::new(0);
    let (mut wall_off_us, mut wall_on_us) = (0u128, 0u128);
    let mut rung_rows = String::new();
    let mut turnpike_records = Vec::new();
    for scheme in Scheme::LADDER {
        let spec = RunSpec::new(scheme);
        let t0 = Instant::now();
        let off = fault_campaign_hooked(
            &kernel.program,
            &spec,
            &config,
            threads,
            CampaignHook::default(),
        );
        let off_us = t0.elapsed().as_micros();
        let on_progress = |p: &CampaignProgress| {
            snapshots.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Touch the full payload the way a renderer would, so the
            // measured overhead includes building every estimator field.
            std::hint::black_box((p.sdc_rate.wilson_bounds(), p.strikes_per_sec, p.eta_ms));
        };
        let hook = CampaignHook {
            on_progress: Some(&on_progress),
            ..CampaignHook::default()
        };
        let t0 = Instant::now();
        let on = fault_campaign_hooked(&kernel.program, &spec, &config, threads, hook);
        let on_us = t0.elapsed().as_micros();
        let ((off_report, off_records, _), (on_report, _, _)) = match (off, on) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("reproduce telemetry: {}: {e}", scheme.cli_name());
                return ExitCode::FAILURE;
            }
        };
        if off_report != on_report {
            eprintln!(
                "reproduce telemetry: {}: progress snapshots changed the report\n  off: {off_report:?}\n  on:  {on_report:?}",
                scheme.cli_name()
            );
            return ExitCode::FAILURE;
        }
        wall_off_us += off_us;
        wall_on_us += on_us;
        println!(
            "{:32} runs {:4}  sdc {:3}  recoveries {:6}  detections {:6}  post {:4}  hangs {:3}",
            scheme.cli_name(),
            off_report.runs,
            off_report.sdc,
            off_report.recoveries,
            off_report.detections,
            off_report.post_completion,
            off_report.hangs,
        );
        if !rung_rows.is_empty() {
            rung_rows.push_str(",\n");
        }
        rung_rows.push_str(&format!(
            "    {{\"scheme\": {}, \"runs\": {}, \"sdc\": {}, \"detections\": {}, \"hangs\": {}}}",
            json_string(scheme.cli_name()),
            off_report.runs,
            off_report.sdc,
            off_report.detections,
            off_report.hangs
        ));
        if scheme == Scheme::Turnpike {
            turnpike_records = off_records;
        }
    }
    let snapshots = snapshots.load(std::sync::atomic::Ordering::Relaxed) / 2;
    let overhead_pct = if wall_off_us > 0 {
        (wall_on_us as f64 - wall_off_us as f64) * 100.0 / wall_off_us as f64
    } else {
        0.0
    };
    eprintln!(
        "# telemetry: untelemetered {} ms, with progress {} ms, overhead {overhead_pct:.2}% \
         ({snapshots} snapshots per pass)",
        wall_off_us / 1000,
        wall_on_us / 1000,
    );

    let mut stop_json = String::new();
    if let Some(half_width) = stop_ci {
        let stop_config = CampaignConfig {
            stop: StopRule::CiWidth {
                half_width,
                cap: runs,
            },
            ..config
        };
        let spec = RunSpec::new(Scheme::Turnpike);
        let report = match fault_campaign_hooked(
            &kernel.program,
            &spec,
            &stop_config,
            threads,
            CampaignHook::default(),
        ) {
            Ok((r, _, _)) => r,
            Err(e) => {
                eprintln!("reproduce telemetry: stop-ci campaign: {e}");
                return ExitCode::FAILURE;
            }
        };
        let est = RateEstimator::from_counts(report.sdc as u64, report.runs as u64);
        println!(
            "stop-ci {half_width}: executed {}/{} runs, sdc-rate half-width {:.4}",
            report.runs,
            runs,
            est.half_width()
        );
        stop_json = format!(
            ",\n  \"stop_ci\": {{\"half_width\": {half_width}, \"cap\": {runs}, \
             \"executed\": {}, \"final_half_width\": {:.4}}}",
            report.runs,
            est.half_width()
        );
    }

    if let Some(path) = &records_path {
        match write_strike_records_capped_to_path(&turnpike_records, max_records, seed, path) {
            Ok(()) => eprintln!(
                "# wrote {path}: {} strike records{}",
                turnpike_records
                    .len()
                    .min(max_records.unwrap_or(usize::MAX)),
                match max_records {
                    Some(cap) => format!(" (reservoir cap {cap} of {})", turnpike_records.len()),
                    None => String::new(),
                }
            ),
            Err(e) => {
                eprintln!("reproduce telemetry: write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let record = format!(
        "{{\n  \"scale\": {},\n  \"kernel\": {},\n  \"runs\": {runs},\n  \"seed\": {seed},\n  \
         \"threads\": {threads},\n  \"wall_off_ms\": {},\n  \"wall_on_ms\": {},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"snapshots_per_pass\": {snapshots}{stop_json},\n  \
         \"rungs\": [\n{rung_rows}\n  ]\n}}",
        json_string(match scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }),
        json_string(&kernel_name),
        wall_off_us / 1000,
        wall_on_us / 1000,
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "telemetry", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}

/// `reproduce explore [--smoke|--full] [--threads N] [--workers A,B,...]
/// [--store DIR] [--resume] [--seed N] [--epsilon X] [--out FILE]` — run
/// the staged cross-layer design-space exploration and emit the Pareto
/// frontier.
///
/// The frontier table goes to stdout (golden-diffable: byte-identical at
/// any `--threads` count and identical between direct execution and a
/// `--workers` fleet); the full frontier artifact goes to `--out`
/// (default `explore_frontier.json`); stage-by-stage progress — grid
/// size, pruning counts, campaign rounds, store traffic — goes to stderr;
/// and the run records the `explore` block of `BENCH_reproduce.json`.
/// `--resume` (requires `--store`) re-runs a sweep against its artifact
/// store so every already-evaluated job is a store hit instead of a
/// simulation; the stderr summary reports how many jobs were skipped.
fn explore_main(args: &[String]) -> ExitCode {
    use turnpike_bench::explore::{
        frontier_json, frontier_table, run_explore, ExploreConfig, JobRunner,
    };

    let mut cfg = ExploreConfig::full();
    let mut threads = default_threads();
    let mut workers: Vec<String> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut out_path = "explore_frontier.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => cfg = ExploreConfig::smoke(),
            "--full" => cfg = ExploreConfig::full(),
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            "--workers" => match it.next() {
                Some(v) => workers = v.split(',').map(str::to_string).collect(),
                None => return usage(),
            },
            "--store" => match it.next() {
                Some(v) => store_dir = Some(v.clone()),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => {
                    eprintln!("reproduce explore: --seed must be an integer");
                    return ExitCode::from(2);
                }
            },
            "--epsilon" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(e) if e > 0.0 => cfg.epsilon = e,
                _ => {
                    eprintln!("reproduce explore: --epsilon must be a float > 0");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if resume && store_dir.is_none() {
        eprintln!("reproduce explore: --resume needs --store DIR (the store holds the artifacts a resumed sweep skips)");
        return ExitCode::from(2);
    }
    if !workers.is_empty() && store_dir.is_some() {
        eprintln!("reproduce explore: --store is the direct path's; with --workers, give each worker its own (serve --store)");
        return ExitCode::from(2);
    }
    let runner = if workers.is_empty() {
        // The executor's engine is serial: explore parallelism is
        // batch-level (whole jobs fan out over `--threads`), which keeps
        // every payload — including campaign payloads — independent of
        // the thread count by construction.
        let mut exec = EngineExecutor::new(Engine::serial());
        if let Some(dir) = &store_dir {
            exec = exec.with_store(Store::open(dir));
        }
        JobRunner::Direct { exec, threads }
    } else {
        JobRunner::Fleet {
            workers: workers.clone(),
        }
    };
    eprintln!(
        "# explore: {} scale, seed {:#x}, epsilon {}, {}",
        cfg.scale_label(),
        cfg.seed,
        cfg.epsilon,
        if workers.is_empty() {
            format!("{threads} threads")
        } else {
            format!("{} workers", workers.len())
        }
    );
    let t0 = Instant::now();
    let report = match run_explore(&runner, &cfg, &mut |line| eprintln!("# explore: {line}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_ms = t0.elapsed().as_millis();
    if resume {
        eprintln!(
            "# explore: resume: {} of {} jobs served from the store",
            report.counts.store_hits, report.counts.jobs
        );
    }

    println!("{}", frontier_table(&report));
    let artifact = frontier_json(&cfg, &report);
    if let Err(e) = std::fs::write(&out_path, &artifact) {
        eprintln!("reproduce explore: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "# explore: wrote {out_path} ({} bytes, {} promoted points, {} on the frontier) in {wall_ms} ms",
        artifact.len(),
        report.counts.promoted,
        report.counts.frontier
    );

    let c = report.counts;
    let record = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"epsilon\": {},\n  \"grid_raw\": {},\n  \
         \"grid_canonical\": {},\n  \"promoted\": {},\n  \"frontier\": {},\n  \"jobs\": {},\n  \
         \"store_hits\": {},\n  \"campaign_runs\": {},\n  \"threads\": {},\n  \"workers\": {},\n  \
         \"wall_ms\": {wall_ms}\n}}",
        json_string(cfg.scale_label()),
        cfg.seed,
        cfg.epsilon,
        c.raw,
        c.canonical,
        c.promoted,
        c.frontier,
        c.jobs,
        c.store_hits,
        c.campaign_runs,
        threads,
        workers.len(),
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "explore", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}

/// `reproduce sim-throughput [--smoke|--full] [--reps N]` — measure
/// fault-free ("golden path") simulator throughput over the whole kernel
/// catalog and record it as the `sim_throughput` block of
/// `BENCH_reproduce.json`.
///
/// Each kernel x scheme cell is timed twice — per-instruction interpreter
/// and superblock-translated dispatch — as wall-clock nanoseconds per
/// retired instruction, min over `--reps` runs (the minimum is the right
/// statistic for a throughput floor: noise on a quiet machine is strictly
/// additive). Cells run sequentially on one thread so measurements never
/// contend with each other.
fn sim_throughput_main(args: &[String]) -> ExitCode {
    let mut scale = Scale::Full;
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => {
                    eprintln!("reproduce sim-throughput: --reps must be an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let suite_key = |s: Suite| match s {
        Suite::Cpu2006 => "cpu2006",
        Suite::Cpu2017 => "cpu2017",
        Suite::Splash3 => "splash3",
    };
    eprintln!("# sim-throughput: {scale_name} scale, min of {reps} reps per cell");
    let mut rows = String::new();
    let (mut interp_ns, mut translated_ns, mut total_insts) = (0.0f64, 0.0f64, 0u64);
    for k in all_kernels(scale) {
        for scheme in [Scheme::Baseline, Scheme::Turnpike] {
            let spec = RunSpec::new(scheme);
            let compiled = match turnpike_compiler::compile(&k.program, &spec.compiler_config()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("reproduce sim-throughput: compile {}: {e}", k.name);
                    return ExitCode::FAILURE;
                }
            };
            let translation = Arc::new(Translation::new(&compiled.program));
            // best[0]: interpreter; best[1]: translated.
            let mut best = [f64::MAX; 2];
            let (mut insts, mut cycles) = (0u64, 0u64);
            for (slot, translate) in [(0, false), (1, true)] {
                for _ in 0..reps {
                    let mut cfg = spec.sim_config();
                    cfg.translate = translate;
                    let mut core = Core::new(&compiled.program, cfg);
                    if translate {
                        core.attach_translation(translation.clone());
                    }
                    let t0 = Instant::now();
                    let out = match core.run() {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("reproduce sim-throughput: run {}: {e}", k.name);
                            return ExitCode::FAILURE;
                        }
                    };
                    let wall = t0.elapsed().as_nanos() as f64;
                    (insts, cycles) = (out.stats.insts, out.stats.cycles);
                    best[slot] = best[slot].min(wall);
                }
            }
            interp_ns += best[0];
            translated_ns += best[1];
            total_insts += insts;
            let (i_ns, t_ns) = (best[0] / insts as f64, best[1] / insts as f64);
            println!(
                "{:9} {:8} {:9} {:>8} insts  interp {:5.1} ns/inst  translated {:5.1} ns/inst",
                k.name,
                suite_key(k.suite),
                scheme.cli_name(),
                insts,
                i_ns,
                t_ns,
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"suite\": {}, \"kernel\": {}, \"scheme\": {}, \"insts\": {insts}, \
                 \"cycles\": {cycles}, \"interp_ns_per_inst\": {i_ns:.1}, \
                 \"translated_ns_per_inst\": {t_ns:.1}}}",
                json_string(suite_key(k.suite)),
                json_string(k.name),
                json_string(scheme.cli_name()),
            ));
        }
    }
    // The headline: wall time per retired instruction over every cell's
    // golden run, insts-weighted — the throughput a campaign's fault-free
    // path sees across the catalog, not a best-case cherry-pick.
    let golden = translated_ns / total_insts as f64;
    let interp = interp_ns / total_insts as f64;
    println!(
        "golden path: {golden:.1} ns/inst translated ({interp:.1} interpreted, {:.2}x)",
        interp / golden
    );
    let record = format!(
        "{{\n  \"scale\": {},\n  \"reps\": {reps},\n  \
         \"golden_path_ns_per_inst\": {golden:.1},\n  \
         \"interp_ns_per_inst\": {interp:.1},\n  \"speedup\": {:.2},\n  \
         \"kernels\": [\n{rows}\n  ]\n}}",
        json_string(scale_name),
        interp / golden,
    );
    if let Err(e) = write_block("BENCH_reproduce.json", "sim_throughput", &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    ExitCode::SUCCESS
}

/// One generated figure: its table, wall-clock, and the run-cache traffic
/// attributed to it (see [`Engine::figure_scope`]).
struct FigureRun {
    table: Table,
    wall_ms: u128,
    run_hits: usize,
    run_misses: usize,
}

fn generate_one(t: &Target, scale: Scale, engine: &Engine) -> FigureRun {
    let scoped = engine.figure_scope();
    let t0 = Instant::now();
    let table = (t.generate)(&scoped, scale);
    scoped.note_figure();
    let (run_hits, run_misses) = scoped.figure_cache_stats();
    FigureRun {
        table,
        wall_ms: t0.elapsed().as_millis(),
        run_hits,
        run_misses,
    }
}

/// Generate the requested tables with per-figure wall-clock. For `all`,
/// figures run concurrently (each with a slice of the thread budget) while
/// compiles and baseline runs dedup through the shared caches; results are
/// gathered in [`TARGETS`] order so output is deterministic.
fn generate(target: &str, scale: Scale, engine: &Engine) -> Option<Vec<FigureRun>> {
    if target != "all" {
        let t = target_by_name(target)?;
        return Some(vec![generate_one(t, scale, engine)]);
    }
    let outer = engine.threads().min(TARGETS.len());
    let inner = (engine.threads() / outer.max(1)).max(1);
    let per_figure = engine.with_threads(inner);
    Some(par_map(&TARGETS, outer, |_, t| {
        generate_one(t, scale, &per_figure)
    }))
}

/// Machine-readable perf record (hand-rolled JSON; see `table.rs`).
fn bench_json(
    target: &str,
    scale: Scale,
    threads: usize,
    cache: bool,
    wall_ms: u128,
    figures: &[FigureRun],
    registry: &MetricSet,
) -> String {
    use turnpike_metrics::Counter;
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": {},\n", json_string(target)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale_name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"cache\": {cache},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str(&format!(
        "  \"compile_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchCompileHits),
        registry.counter(Counter::BenchCompileMisses)
    ));
    out.push_str(&format!(
        "  \"run_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        registry.counter(Counter::BenchRunHits),
        registry.counter(Counter::BenchRunMisses)
    ));
    out.push_str(&format!(
        "  \"fork\": {{\"hits\": {}, \"misses\": {}, \"prefix_cycles_saved\": {}, \
         \"replay_exits\": {}, \"replay_cycles_saved\": {}}},\n",
        registry.counter(Counter::CampaignForkHits),
        registry.counter(Counter::CampaignForkMisses),
        registry.counter(Counter::CampaignForkCyclesSaved),
        registry.counter(Counter::CampaignReplayExits),
        registry.counter(Counter::CampaignReplayCyclesSaved)
    ));
    out.push_str(&format!(
        "  \"histograms\": {},\n",
        hist_summary_json(registry, "  ")
    ));
    out.push_str("  \"figures\": [");
    for (i, f) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `cached` distinguishes a figure served from the run cache from one
        // that simulated: `wall_ms: 0` alone can't (static tables are also
        // instant). Hit/miss counts make partially-cached figures visible.
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"wall_ms\": {}, \"cached\": {}, \
             \"run_cache\": {{\"hits\": {}, \"misses\": {}}}}}",
            json_string(&f.table.id),
            f.wall_ms,
            f.run_misses == 0 && f.run_hits > 0,
            f.run_hits,
            f.run_misses
        ));
    }
    if !figures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => return trace_main(&args[1..]),
        Some("serve") => return serve_main(&args[1..]),
        Some("submit") => return submit_main(&args[1..]),
        Some("loadgen") => return loadgen_main(&args[1..]),
        Some("coordinate") => return coordinate_main(&args[1..]),
        Some("fleet-bench") => return fleet_bench_main(&args[1..]),
        Some("watch") => return watch_main(&args[1..]),
        Some("telemetry") => return telemetry_main(&args[1..]),
        Some("explore") => return explore_main(&args[1..]),
        Some("sim-throughput") => return sim_throughput_main(&args[1..]),
        _ => {}
    }
    let mut target: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json = false;
    let mut cache = true;
    let mut threads = default_threads();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print!("{}", target_listing());
                print!(
                    "subcommands:\n\
                     \x20 trace           export one kernel's resilience-event timeline\n\
                     \x20 serve           batch job server (--flight-dir DIR dumps failed-job evidence)\n\
                     \x20 submit          send one job (--progress: live rate/CI/ETA bar)\n\
                     \x20 loadgen         saturate a server; p50/p99/p99.9 client latency\n\
                     \x20 coordinate      shard a campaign across a worker fleet; merged payload\n\
                     \x20 fleet-bench     distributed speedup + open-loop fleet latency block\n\
                     \x20 watch           poll a server's stats + metrics exposition (--workers: fleet view)\n\
                     \x20 telemetry       measure progress-snapshot overhead (--max-records caps JSONL)\n\
                     \x20 explore         staged design-space exploration; Pareto frontier artifact\n\
                     \x20 sim-throughput  fault-free simulator speed\n"
                );
                return ExitCode::SUCCESS;
            }
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--threads" => match parse_threads(it.next()) {
                Ok(n) => threads = n,
                Err(code) => return code,
            },
            t if target.is_none() && !t.starts_with('-') => target = Some(t.to_string()),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    if target != "all" && target_by_name(&target).is_none() {
        eprintln!("reproduce: unknown target '{target}'; known targets:");
        eprint!("{}", target_listing());
        return ExitCode::from(2);
    }
    let mut engine = Engine::new(threads);
    if !cache {
        engine = engine.without_cache();
    }
    // Run header on stderr (stdout is golden-diffed): the effective thread
    // count matters because --threads defaults to the machine's available
    // parallelism, so two hosts run the same command differently. Output is
    // byte-identical at any thread count; `--threads 1` additionally makes
    // the execution schedule itself deterministic.
    eprintln!(
        "# reproduce {target}: {threads} threads, {} scale, cache {}",
        match scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        if cache { "on" } else { "off" },
    );
    let t0 = Instant::now();
    let Some(tables) = generate(&target, scale, &engine) else {
        return usage();
    };
    let wall_ms = t0.elapsed().as_millis();
    for f in &tables {
        if json {
            println!("{}", f.table.to_json());
        } else {
            println!("{}", f.table);
        }
    }
    for f in &tables {
        eprintln!("# {}: {} ms", f.table.id, f.wall_ms);
    }
    eprintln!(
        "# total: {wall_ms} ms ({} threads, cache {}, {} compiles, {} sims)",
        threads,
        if cache { "on" } else { "off" },
        engine.compile_count(),
        engine.sim_count()
    );
    // The figure grid is fault-free, so the detection-latency and
    // recovery-penalty histograms need a small seeded strike campaign.
    let mut registry = engine.metrics();
    match fault_probe_metrics(threads) {
        Ok((probe, fork)) => {
            for key in [Hist::DetectLatency, Hist::RecoveryPenalty] {
                if let Some(h) = probe.hist(key) {
                    registry.merge_hist(key, h);
                }
            }
            // Fork accounting feeds the bench registry only — campaign
            // reports stay bit-identical with or without snapshots.
            registry.merge(&fork.to_metrics());
        }
        Err(e) => eprintln!("# warning: fault probe failed: {e}"),
    }
    let record = bench_json(&target, scale, threads, cache, wall_ms, &tables, &registry);
    if let Err(e) = write_block("BENCH_reproduce.json", &target, &record) {
        eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
    }
    // The adaptive rung additionally records its per-kernel comparison
    // against the best uniform scheme (under the "adaptive" key, replacing
    // the generic perf block when the target itself was `adaptive`).
    if let Some(f) = tables.iter().find(|f| f.table.id == "adaptive") {
        let record = adaptive_block_json(&f.table, scale, f.wall_ms);
        if let Err(e) = write_block("BENCH_reproduce.json", "adaptive", &record) {
            eprintln!("# warning: could not write BENCH_reproduce.json: {e}");
        }
    }
    ExitCode::SUCCESS
}

/// The `adaptive` block of `BENCH_reproduce.json`: per-kernel normalized
/// time of the adaptive rung against the best uniform scheme, plus the
/// figure's wall-clock (columns are pinned by the `adaptive` generator).
fn adaptive_block_json(table: &Table, scale: Scale, wall_ms: u128) -> String {
    let scale_name = match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    };
    let mut rows = String::new();
    for (label, v) in &table.rows {
        if label.starts_with("geomean") {
            continue;
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"kernel\": {}, \"adaptive\": {:.4}, \"best_uniform\": {:.4}, \
             \"ratio\": {:.4}, \"win\": {}}}",
            json_string(label),
            v[0],
            v[1],
            v[2],
            v[3] > 0.0,
        ));
    }
    let g = table.row("geomean.all").unwrap_or(&[0.0; 4]);
    format!(
        "{{\n  \"scale\": {},\n  \"wall_ms\": {wall_ms},\n  \
         \"geomean_ratio_vs_best_uniform\": {:.4},\n  \"win_rate\": {:.4},\n  \
         \"kernels\": [\n{rows}\n  ]\n}}",
        json_string(scale_name),
        g[2],
        g[3],
    )
}
