//! Streaming campaign telemetry: rate estimation with confidence bounds,
//! windowed throughput, bounded sampling, and metrics exposition.
//!
//! Everything here is built for the *observer* side of a fault campaign:
//! the estimators are online (O(1) state, no per-sample allocation),
//! mergeable across worker threads like [`Histogram`](crate::Histogram),
//! and deterministic — the reservoir sampler draws from its own seeded
//! generator so sampled output is reproducible for a given seed, and the
//! throughput meter consumes caller-supplied timestamps so nothing in this
//! crate reads the wall clock.

use std::collections::VecDeque;

use crate::{Counter, Gauge, Hist, MergePolicy, MetricSet};

/// z for a two-sided 95% interval (`Φ⁻¹(0.975)`).
const Z95: f64 = 1.959_963_984_540_054;

/// Online success/total rate with Wilson-score confidence bounds.
///
/// The Wilson interval is the standard choice for binomial rates near 0 or
/// 1 with small n — exactly the regime of SDC rates, where the naive
/// normal interval collapses to `0 ± 0` after a streak of successes. Like
/// [`Histogram`](crate::Histogram), estimators from different worker
/// threads [`merge`](RateEstimator::merge) by simple addition, so a
/// campaign can keep one per shard and fold them for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateEstimator {
    successes: u64,
    trials: u64,
}

impl RateEstimator {
    /// An empty estimator (no trials observed).
    pub fn new() -> Self {
        RateEstimator::default()
    }

    /// An estimator seeded from already-aggregated counts.
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes cannot exceed trials");
        RateEstimator { successes, trials }
    }

    /// Record one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        self.successes += success as u64;
    }

    /// Fold another estimator's trials into this one.
    pub fn merge(&mut self, other: &RateEstimator) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Successes observed so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Trials observed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `successes / trials`; `0.0` with no trials.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95% Wilson-score interval `(lo, hi)`; the vacuous `(0, 1)` with no
    /// trials. Always contained in `[0, 1]`.
    pub fn wilson_bounds(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.successes as f64 / n;
        let z2 = Z95 * Z95;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let spread = Z95 / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - spread).max(0.0), (center + spread).min(1.0))
    }

    /// Half the width of the 95% Wilson interval — the "± x" a campaign
    /// converges on. `0.5` with no trials (the vacuous interval).
    pub fn half_width(&self) -> f64 {
        let (lo, hi) = self.wilson_bounds();
        (hi - lo) / 2.0
    }
}

/// Windowed throughput over caller-supplied `(t_ns, units, insts)`
/// observations.
///
/// Each [`observe`](ThroughputMeter::observe) records cumulative totals at
/// a timestamp; rates are computed over the last `window` observations, so
/// a long campaign's ETA tracks the *recent* pace rather than averaging in
/// a cold start. The meter never reads a clock itself — timestamps come
/// from the caller, which keeps this crate deterministic and testable.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window: usize,
    samples: VecDeque<(u64, u64, u64)>,
}

impl ThroughputMeter {
    /// A meter averaging over the last `window` observations (min 2).
    pub fn new(window: usize) -> Self {
        let window = window.max(2);
        let mut samples = VecDeque::with_capacity(window);
        // Origin sample: rates are defined from the first real observation.
        samples.push_back((0, 0, 0));
        ThroughputMeter { window, samples }
    }

    /// Record cumulative totals (`units` done, `insts` simulated) at
    /// elapsed time `t_ns`.
    pub fn observe(&mut self, t_ns: u64, units: u64, insts: u64) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back((t_ns, units, insts));
    }

    fn span(&self) -> Option<(u64, u64, u64)> {
        let &(t0, u0, i0) = self.samples.front()?;
        let &(t1, u1, i1) = self.samples.back()?;
        if t1 <= t0 {
            return None;
        }
        Some((t1 - t0, u1.saturating_sub(u0), i1.saturating_sub(i0)))
    }

    /// Units per second over the window; `0.0` before the first
    /// observation.
    pub fn units_per_sec(&self) -> f64 {
        match self.span() {
            Some((dt, du, _)) => du as f64 / (dt as f64 / 1e9),
            None => 0.0,
        }
    }

    /// Host nanoseconds per simulated instruction over the window; `0.0`
    /// when no instructions were retired in the window.
    pub fn ns_per_inst(&self) -> f64 {
        match self.span() {
            Some((dt, _, di)) if di > 0 => dt as f64 / di as f64,
            _ => 0.0,
        }
    }

    /// Estimated nanoseconds to finish `remaining` units at the windowed
    /// pace; `0` when the pace is unknown (no observations yet).
    pub fn eta_ns(&self, remaining: u64) -> u64 {
        match self.span() {
            Some((dt, du, _)) if du > 0 => {
                (remaining as f64 * dt as f64 / du as f64).round() as u64
            }
            _ => 0,
        }
    }
}

/// Uniform bounded sampler (Algorithm R) with a private seeded generator.
///
/// Offers stream through in one pass; at any point [`sample`](Reservoir::sample)
/// holds a uniform random subset of size `min(cap, seen)`. Used to cap
/// strike-record JSONL output at O(cap) for arbitrarily large campaigns.
/// The draw sequence depends only on `(cap, seed, offer order)`, so capped
/// output is reproducible.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    cap: usize,
    seen: u64,
    rng: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// A reservoir keeping at most `cap` items (min 1).
    pub fn new(cap: usize, seed: u64) -> Self {
        let cap = cap.max(1);
        Reservoir {
            cap,
            seen: 0,
            // Same golden-ratio pre-mix as the campaign's run-seed stream.
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            items: Vec::with_capacity(cap.min(1024)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: the workspace's stock allocation-free generator.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Offer one item from the stream.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(item);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.cap {
                self.items[j as usize] = item;
            }
        }
    }

    /// Total items offered (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Items currently kept.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The kept subset, in retention order (not offer order).
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// Consume the reservoir, returning the kept subset.
    pub fn into_sample(self) -> Vec<T> {
        self.items
    }
}

/// Format an `f64` the way the serve-layer JSON writer does: integral
/// values as integers, everything else via the shortest round-trippable
/// decimal form.
fn fmt_num(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Render a [`MetricSet`] as Prometheus text exposition.
///
/// Every registered key is emitted every time — counters and gauges as
/// scalar samples, histograms as summaries (`{quantile=...}`, `_sum`,
/// `_count`) — in declaration order, so the line order and the set of
/// `# TYPE` lines are byte-stable across runs and scrapeable against a
/// golden. Names are the registry's dotted names with dots and dashes
/// mapped to underscores under a `turnpike_` prefix. `Max`-policy counters
/// are exposed as gauges (a peak is not monotone across restarts).
pub fn prometheus_text(m: &MetricSet) -> String {
    let mut out = String::new();
    for &key in Counter::ALL {
        let name = metric_name(key.name());
        let kind = match key.merge_policy() {
            MergePolicy::Sum => "counter",
            MergePolicy::Max => "gauge",
        };
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        out.push_str(&format!("{name} {}\n", m.counter(key)));
    }
    for &key in Gauge::ALL {
        let name = metric_name(key.name());
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} "));
        fmt_num(&mut out, m.gauge(key));
        out.push('\n');
    }
    for &key in Hist::ALL {
        let name = metric_name(key.name());
        out.push_str(&format!("# TYPE {name} summary\n"));
        let empty = crate::Histogram::new();
        let h = m.hist(key).unwrap_or(&empty);
        for q in ["0.5", "0.99", "0.999"] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} "));
            fmt_num(&mut out, h.quantile(q.parse().expect("literal quantile")));
            out.push('\n');
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum()));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// `sim.stall.sb_full` → `turnpike_sim_stall_sb_full`.
fn metric_name(dotted: &str) -> String {
    let mut s = String::with_capacity(dotted.len() + 9);
    s.push_str("turnpike_");
    for c in dotted.chars() {
        s.push(match c {
            '.' | '-' => '_',
            c => c,
        });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_bounds_contain_the_rate_and_tighten() {
        let mut e = RateEstimator::new();
        assert_eq!(e.wilson_bounds(), (0.0, 1.0));
        assert_eq!(e.half_width(), 0.5);
        for i in 0..100 {
            e.record(i % 4 == 0);
        }
        let (lo, hi) = e.wilson_bounds();
        assert!(lo < 0.25 && 0.25 < hi, "({lo}, {hi})");
        assert!(e.half_width() < 0.1);
        let mut big = RateEstimator::from_counts(2500, 10_000);
        let w100 = e.half_width();
        assert!(big.half_width() < w100 / 5.0, "CI shrinks ~ sqrt(n)");
        big.merge(&e);
        assert_eq!(big.trials(), 10_100);
        assert_eq!(big.successes(), 2525);
    }

    #[test]
    fn wilson_never_collapses_at_zero_rate() {
        // The regime that motivates Wilson over the normal approximation:
        // zero observed SDCs must still give a nonzero upper bound.
        let e = RateEstimator::from_counts(0, 50);
        let (lo, hi) = e.wilson_bounds();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15, "{hi}");
        assert_eq!(e.rate(), 0.0);
    }

    #[test]
    fn merge_matches_pooled_counts() {
        let mut a = RateEstimator::from_counts(3, 10);
        let b = RateEstimator::from_counts(7, 30);
        a.merge(&b);
        assert_eq!(a, RateEstimator::from_counts(10, 40));
    }

    #[test]
    fn throughput_meter_windows_recent_pace() {
        let mut t = ThroughputMeter::new(3);
        assert_eq!(t.units_per_sec(), 0.0);
        assert_eq!(t.eta_ns(10), 0);
        t.observe(1_000_000_000, 10, 1000);
        assert!((t.units_per_sec() - 10.0).abs() < 1e-9);
        // Pace doubles; a window of 3 forgets the slow start.
        t.observe(2_000_000_000, 30, 3000);
        t.observe(3_000_000_000, 50, 5000);
        t.observe(4_000_000_000, 70, 7000);
        assert!((t.units_per_sec() - 20.0).abs() < 1e-9);
        assert!((t.ns_per_inst() - 500_000.0).abs() < 1e-6);
        assert_eq!(t.eta_ns(40), 2_000_000_000);
    }

    #[test]
    fn reservoir_is_bounded_uniform_and_deterministic() {
        let mut r = Reservoir::new(8, 42);
        for i in 0..1000u32 {
            r.offer(i);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 1000);
        let mut again = Reservoir::new(8, 42);
        for i in 0..1000u32 {
            again.offer(i);
        }
        assert_eq!(r.sample(), again.sample(), "same seed, same sample");
        let mut other = Reservoir::new(8, 43);
        for i in 0..1000u32 {
            other.offer(i);
        }
        assert_ne!(r.sample(), other.sample(), "different seed draws differ");
        // Under capacity the reservoir is the identity.
        let mut small = Reservoir::new(8, 7);
        for i in 0..5u32 {
            small.offer(i);
        }
        assert_eq!(small.into_sample(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Each of 100 items should land in a cap-10 sample ~10% of the
        // time across seeds; check no item is starved or dominant.
        let mut hits = [0u32; 100];
        for seed in 0..200u64 {
            let mut r = Reservoir::new(10, seed);
            for i in 0..100usize {
                r.offer(i);
            }
            for &i in r.sample() {
                hits[i] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((5..=40).contains(&h), "item {i} kept {h}/200 times");
        }
    }

    #[test]
    fn exposition_is_stable_and_complete() {
        let mut m = MetricSet::new();
        m.add(Counter::CampaignRuns, 12);
        m.record_hist(Hist::ServeJobMicros, 250);
        m.set_gauge(Gauge::AvgRegionInsts, 11.5);
        let text = prometheus_text(&m);
        assert_eq!(text, prometheus_text(&m), "rendering is deterministic");
        // Every registered key appears exactly once, valued or not.
        let type_lines = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        assert_eq!(
            type_lines,
            Counter::ALL.len() + Gauge::ALL.len() + Hist::ALL.len()
        );
        assert!(text.contains("turnpike_campaign_runs 12\n"));
        assert!(text.contains("turnpike_sim_avg_region_insts 11.5\n"));
        assert!(text.contains("turnpike_serve_hist_job_us_sum 250\n"));
        assert!(text.contains("turnpike_serve_hist_job_us_count 1\n"));
        assert!(text.contains("turnpike_serve_hist_job_us{quantile=\"0.999\"} 250\n"));
        // The TYPE-line set is identical for an empty registry — this is
        // what lets CI golden-diff the exposition schema.
        let schema = |t: &str| {
            t.lines()
                .filter(|l| l.starts_with("# TYPE "))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(schema(&text), schema(&prometheus_text(&MetricSet::new())));
    }
}
