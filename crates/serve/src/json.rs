//! Minimal JSON value, parser, and stable-key-order writer.
//!
//! The build environment has no registry access, so serde is unavailable;
//! this is the small slice of it the wire protocol needs. Objects preserve
//! insertion order on both parse and write — like `JsonlSink` and
//! `StrikeRecord::to_json`, key order is part of the schema, which is what
//! makes served payloads byte-diffable against golden files.
//!
//! Numbers are stored as `f64`. Integers round-trip exactly up to 2^53,
//! which covers every quantity the protocol carries (cycle counts, seeds,
//! queue depths); the paper harness never serializes a full-range `u64`
//! through the wire.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see module docs for integer precision).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or missing
    /// keys. First match wins (duplicate keys are not rejected).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a number
    /// that is one (non-negative, integral, exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse one JSON document from `text` (must consume the whole input
    /// apart from trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a byte offset plus message on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Malformed-input error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol (all payload text is ASCII); map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A '-' inside an exponent ("1e-3") stops the loop above; resume.
        while self.peek() == Some(b'-') && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// JSON-escape `s` into a quoted string (same escapes as the bench
/// harness's `json_string`, duplicated here to keep this crate std-only).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    /// Compact single-line rendering, object members in stored order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5").unwrap(), Json::Num(-12.5));
        assert_eq!(Json::parse("1e-3").unwrap(), Json::Num(0.001));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse("{\"a\":[1,2,{\"b\":false}],\"c\":\"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\"}", "[1,]", "tru", "\"open", "1 2", "{]"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn u64_accessor_guards_range_and_integrality() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("42".into()).as_u64(), None);
    }

    #[test]
    fn display_round_trips_and_preserves_member_order() {
        let text = "{\"z\":1,\"a\":[true,null,\"x\"],\"m\":{\"k\":2.5}}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text, "member order is preserved");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        let v = Json::Str("tab\there".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo ☂\"").unwrap();
        assert_eq!(v, Json::Str("héllo ☂".into()));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
