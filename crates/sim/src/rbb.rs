//! Region boundary buffer (RBB) and the verification timing logic.
//!
//! The RBB tracks dynamic region *instances*: each committed region boundary
//! closes the running instance and opens a new one. An instance is verified
//! once `end_cycle + WCDL` passes with no error detected before that point;
//! verification is processed strictly in order. The oldest verified
//! boundary's PC is the recovery PC after an error (paper §2.1).
//!
//! Each instance carries its *own* WCDL: with per-region protection modes an
//! unprotected region has no detection to wait out (its window is zero),
//! while its protected neighbors keep the full sensor window. Uniform
//! configurations pass the same WCDL for every instance and behave exactly
//! as before.

use std::collections::VecDeque;
use turnpike_isa::RegionId;

/// One dynamic region instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionInstance {
    /// Monotone sequence number (0 = the instance starting at PC 0).
    pub seq: u64,
    /// Static region id (selects the recovery block).
    pub static_id: RegionId,
    /// PC at which the instance (re-)starts execution.
    pub entry_pc: u32,
    /// Cycle the instance (re-)started (verification-latency accounting).
    pub start_cycle: u64,
    /// Cycle its ending boundary committed; `None` while running.
    pub end_cycle: Option<u64>,
    /// Dynamic instructions committed by this instance (region size stats).
    pub insts: u64,
    /// Sensor window this instance must wait out after ending before it
    /// verifies (zero for unprotected regions).
    pub wcdl: u64,
}

/// The region boundary buffer.
///
/// The running instance lives in its own field rather than at the back of
/// the deque: the simulator touches it once per committed instruction
/// (`count_inst`) and on every trace/CLQ sequence lookup (`current_seq`),
/// and a plain field keeps those on the hot path free of deque indexing.
#[derive(Debug, Clone)]
pub struct Rbb {
    /// The running (not yet ended) instance.
    cur: RegionInstance,
    /// Ended-but-unverified instances, oldest first.
    live: VecDeque<RegionInstance>,
    capacity: usize,
    next_seq: u64,
    /// Total instances verified.
    pub verified_count: u64,
    /// Sum of instruction counts over completed instances (for Fig 26).
    pub insts_sum: u64,
    /// Completed instances (denominator for the average region size).
    pub completed: u64,
}

impl Rbb {
    /// A new RBB holding at most `capacity` unverified instances, with the
    /// running region 0 starting at PC 0 under a `wcdl`-cycle window.
    pub fn new(capacity: u32, wcdl: u64) -> Self {
        Rbb {
            cur: RegionInstance {
                seq: 0,
                static_id: RegionId(0),
                entry_pc: 0,
                start_cycle: 0,
                end_cycle: None,
                insts: 0,
                wcdl,
            },
            live: VecDeque::new(),
            capacity: capacity as usize,
            next_seq: 1,
            verified_count: 0,
            insts_sum: 0,
            completed: 0,
        }
    }

    /// Sequence number of the running instance.
    #[inline]
    pub fn current_seq(&self) -> u64 {
        self.cur.seq
    }

    /// The running instance.
    pub fn current(&self) -> &RegionInstance {
        &self.cur
    }

    /// Count an instruction against the running instance.
    #[inline]
    pub fn count_inst(&mut self) {
        self.cur.insts += 1;
    }

    /// Whether a boundary can commit (room for one more instance).
    pub fn has_room(&self) -> bool {
        self.live.len() + 1 < self.capacity
    }

    /// Earliest verification time of the oldest unverified *ended* instance
    /// (used to compute how long a boundary must stall on a full RBB).
    pub fn earliest_verify_time(&self) -> Option<u64> {
        self.live
            .front()
            .and_then(|r| r.end_cycle.map(|e| e + r.wcdl))
    }

    /// Commit a boundary at `cycle`: the running instance ends, a new one
    /// starts under a `wcdl`-cycle sensor window. Caller must have checked
    /// [`has_room`](Self::has_room).
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn on_boundary(&mut self, static_id: RegionId, entry_pc: u32, cycle: u64, wcdl: u64) {
        assert!(self.has_room(), "RBB overflow: caller must stall");
        self.cur.end_cycle = Some(cycle);
        self.insts_sum += self.cur.insts;
        self.completed += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push_back(self.cur);
        self.cur = RegionInstance {
            seq,
            static_id,
            entry_pc,
            start_cycle: cycle,
            end_cycle: None,
            insts: 0,
            wcdl,
        };
    }

    /// Verify every ended instance whose `end + WCDL` is strictly before
    /// `now` — in order, stopping at the first still-unverifiable one.
    /// Returns the verified instances.
    pub fn verify_until(&mut self, now: u64) -> Vec<RegionInstance> {
        let mut out = Vec::new();
        while let Some(inst) = self.verify_next(now) {
            out.push(inst);
        }
        out
    }

    /// Pop the oldest instance whose verification point has passed by
    /// `now`, if any — the allocation-free form of [`Rbb::verify_until`]
    /// for the simulator's per-instruction settle loop.
    pub fn verify_next(&mut self, now: u64) -> Option<RegionInstance> {
        let front = self.live.front()?;
        match front.end_cycle {
            Some(e) if e + front.wcdl < now => {
                self.verified_count += 1;
                self.live.pop_front()
            }
            _ => None,
        }
    }

    /// Error detected at `now`: the oldest unverified instance is the
    /// recovery target. Returns it; all younger instances are squashed and
    /// the target becomes the (restarted) running instance.
    pub fn recover(&mut self, now: u64) -> RegionInstance {
        let mut target = *self.live.front().unwrap_or(&self.cur);
        // Restart: the target runs again; younger instances vanish.
        target.end_cycle = None;
        target.insts = 0;
        target.start_cycle = now;
        self.live.clear();
        self.cur = target;
        target
    }

    /// Replay equivalence against a golden-run RBB whose timeline trails
    /// this one by `dc` cycles and `ds` sequence numbers: the running and
    /// unverified instances must match exactly under the shift, and
    /// `next_seq` must carry the same shift so every future boundary
    /// allocates shifted sequence numbers. `verified_count`, `insts_sum`,
    /// and `completed` are pure statistics (synthesized separately by the
    /// early-exit replay) and deliberately not compared.
    pub(crate) fn replay_equivalent(&self, golden: &Rbb, dc: u64, ds: u64) -> bool {
        fn inst_eq(a: &RegionInstance, b: &RegionInstance, dc: u64, ds: u64) -> bool {
            a.seq == b.seq.wrapping_add(ds)
                && a.static_id == b.static_id
                && a.entry_pc == b.entry_pc
                && a.start_cycle == b.start_cycle + dc
                && a.end_cycle == b.end_cycle.map(|e| e + dc)
                && a.insts == b.insts
                && a.wcdl == b.wcdl
        }
        self.next_seq == golden.next_seq.wrapping_add(ds)
            && inst_eq(&self.cur, &golden.cur, dc, ds)
            && self.live.len() == golden.live.len()
            && self
                .live
                .iter()
                .zip(golden.live.iter())
                .all(|(a, b)| inst_eq(a, b, dc, ds))
    }

    /// All unverified instance sequence numbers, oldest first, the running
    /// instance last (used to decide which SB entries / colors to squash).
    pub fn unverified_seqs(&self) -> Vec<u64> {
        self.live
            .iter()
            .map(|r| r.seq)
            .chain(std::iter::once(self.cur.seq))
            .collect()
    }

    /// Number of unverified instances, counting the running one (the length
    /// of [`Rbb::unverified_seqs`] without materializing it).
    pub fn unverified_count(&self) -> usize {
        self.live.len() + 1
    }

    /// Average dynamic instructions per completed region.
    pub fn avg_region_insts(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.insts_sum as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_create_instances() {
        let mut r = Rbb::new(4, 10);
        assert_eq!(r.current_seq(), 0);
        r.count_inst();
        r.count_inst();
        r.on_boundary(RegionId(1), 5, 100, 10);
        assert_eq!(r.current_seq(), 1);
        assert_eq!(r.current().entry_pc, 5);
        assert_eq!(r.avg_region_insts(), 2.0);
    }

    #[test]
    fn verification_is_in_order_and_strict() {
        let mut r = Rbb::new(4, 10);
        r.on_boundary(RegionId(1), 5, 100, 10); // region 0 ends at 100
        r.on_boundary(RegionId(2), 9, 120, 10); // region 1 ends at 120
        assert!(r.verify_until(110).is_empty()); // 100+10 !< 110
        let v = r.verify_until(111);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].seq, 0);
        let v = r.verify_until(500);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].seq, 1);
        // The running instance never verifies.
        assert!(r.verify_until(10_000).is_empty());
        assert_eq!(r.verified_count, 2);
    }

    #[test]
    fn capacity_gates_boundaries() {
        let mut r = Rbb::new(2, 10);
        r.on_boundary(RegionId(1), 1, 50, 10);
        assert!(!r.has_room());
        assert_eq!(r.earliest_verify_time(), Some(60));
        let _ = r.verify_until(61);
        assert!(r.has_room());
    }

    #[test]
    fn recovery_restarts_oldest_unverified() {
        let mut r = Rbb::new(8, 10);
        r.on_boundary(RegionId(1), 5, 100, 10);
        r.on_boundary(RegionId(2), 9, 120, 10);
        // Error detected at 115: region 0 verified (100+10 < 115), others no.
        let _ = r.verify_until(115);
        let target = r.recover(115);
        assert_eq!(target.seq, 1);
        assert_eq!(target.static_id, RegionId(1));
        assert_eq!(target.entry_pc, 5);
        assert_eq!(r.current_seq(), 1);
        assert_eq!(r.current().end_cycle, None);
        assert_eq!(r.unverified_seqs(), vec![1]);
    }

    #[test]
    fn per_instance_wcdl_drives_verification() {
        let mut r = Rbb::new(4, 10);
        // Region 0 (wcdl 10) ends at 100; the unprotected region 1 (wcdl 0)
        // ends at 120; region 2 is running.
        r.on_boundary(RegionId(1), 5, 100, 0);
        r.on_boundary(RegionId(2), 9, 120, 10);
        // In-order: region 1's zero window cannot overtake region 0.
        assert!(r.verify_until(105).is_empty());
        assert_eq!(r.earliest_verify_time(), Some(110));
        // Once region 0's window passes, region 1 verifies immediately too.
        let v = r.verify_until(121);
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].wcdl, 0);
    }

    #[test]
    fn recovery_in_region_zero() {
        let mut r = Rbb::new(8, 10);
        let t = r.recover(3);
        assert_eq!(t.seq, 0);
        assert_eq!(t.entry_pc, 0);
        assert_eq!(t.static_id, RegionId(0));
    }
}
