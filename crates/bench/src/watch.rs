//! Live rendering of campaign progress and server health: the text behind
//! `reproduce watch` and `reproduce submit --progress`.
//!
//! Pure string builders, deliberately free of terminal I/O so every line
//! the CLI can print is unit-testable. The CLI decides *where* a line goes
//! (carriage-return rewrite on a TTY, one line per snapshot otherwise);
//! this module only decides what it says.

use turnpike_serve::{Json, ProgressStats};

/// Width of the progress bar in characters.
const BAR_WIDTH: usize = 24;

/// Humanize a millisecond duration: `0s`, `42s`, `3m05s`, `2h07m`.
pub fn fmt_eta(ms: u64) -> String {
    let secs = ms / 1000;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// A `[#####----]` bar at `done/total` (full when `total` is zero — an
/// empty campaign is finished, not stuck at the start).
fn bar(done: u64, total: u64) -> String {
    let filled = if total == 0 {
        BAR_WIDTH
    } else {
        ((done.min(total) as usize) * BAR_WIDTH) / total as usize
    };
    let mut s = String::with_capacity(BAR_WIDTH + 2);
    s.push('[');
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '-' });
    }
    s.push(']');
    s
}

/// One live progress line. Without an estimator payload (older server or
/// a bare per-run tick) it is just the bar and counts; with one it adds
/// the SDC rate with its Wilson interval, the windowed pace, and the ETA.
pub fn progress_line(done: u64, total: u64, stats: Option<&ProgressStats>) -> String {
    let mut line = format!("{} {done}/{total}", bar(done, total));
    if let Some(s) = stats {
        line.push_str(&format!(
            "  sdc {:.4} [{:.4},{:.4}]  {:.1} strikes/s  {:.1} ns/inst  eta {}",
            s.sdc_rate,
            s.sdc_ci_lo,
            s.sdc_ci_hi,
            s.strikes_per_sec,
            s.ns_per_inst,
            fmt_eta(s.eta_ms)
        ));
    }
    line
}

/// Render one `watch` snapshot from the server's `stats` JSON body and its
/// Prometheus exposition: a queue/outcome summary line, a store line, and
/// the campaign counters scraped from the exposition.
pub fn render_watch(stats_json: &str, metrics_text: &str) -> String {
    let mut out = String::new();
    match Json::parse(stats_json) {
        Ok(v) => {
            let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
            out.push_str(&format!(
                "queue {}/{}  accepted {}  completed {}  failed {}  canceled {}  rejected {}\n",
                n("queue_depth"),
                n("queue_capacity"),
                n("accepted"),
                n("completed"),
                n("failed"),
                n("canceled"),
                n("rejected"),
            ));
            out.push_str(&format!(
                "store hits {}  misses {}  quarantined {}  job p50 {} us  p99 {} us\n",
                n("store_hits"),
                n("store_misses"),
                n("store_quarantined"),
                n("job_p50_us"),
                n("job_p99_us"),
            ));
        }
        Err(e) => out.push_str(&format!("stats unavailable: {e}\n")),
    }
    for line in metrics_text.lines() {
        if line.starts_with("turnpike_campaign_") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Render one fleet `watch` snapshot from per-worker stats bodies.
///
/// `workers` pairs each address with its `stats` JSON body, or with the
/// error that kept it from answering — a dead worker stays visible in the
/// view instead of silently shrinking the fleet. The header aggregates
/// queue depth and job outcomes across reachable workers; each worker line
/// adds its busy-time utilization (`busy_us / (uptime_us × workers)`,
/// the same definition the fleet load generator reports).
pub fn render_fleet_watch(workers: &[(String, Result<String, String>)]) -> String {
    let mut depth = 0u64;
    let mut capacity = 0u64;
    let mut accepted = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut rejected = 0u64;
    let mut alive = 0usize;
    let mut lines = Vec::with_capacity(workers.len());
    for (addr, stats) in workers {
        match stats.as_ref().map(|s| Json::parse(s)) {
            Ok(Ok(v)) => {
                let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
                alive += 1;
                depth += n("queue_depth");
                capacity += n("queue_capacity");
                accepted += n("accepted");
                completed += n("completed");
                failed += n("failed");
                rejected += n("rejected");
                let busy = n("busy_us") as f64;
                let span = (n("uptime_us").max(1) * n("workers").max(1)) as f64;
                lines.push(format!(
                    "  {addr}  queue {}/{}  completed {}  failed {}  util {:.2}\n",
                    n("queue_depth"),
                    n("queue_capacity"),
                    n("completed"),
                    n("failed"),
                    busy / span,
                ));
            }
            Ok(Err(e)) => lines.push(format!("  {addr}  bad stats: {e}\n")),
            Err(e) => lines.push(format!("  {addr}  unreachable: {e}\n")),
        }
    }
    let mut out = format!(
        "fleet {alive}/{} up  queue {depth}/{capacity}  accepted {accepted}  \
         completed {completed}  failed {failed}  rejected {rejected}\n",
        workers.len()
    );
    for line in lines {
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_is_humanized_across_magnitudes() {
        assert_eq!(fmt_eta(0), "0s");
        assert_eq!(fmt_eta(41_900), "41s");
        assert_eq!(fmt_eta(185_000), "3m05s");
        assert_eq!(fmt_eta(7_620_000), "2h07m");
    }

    #[test]
    fn progress_line_scales_the_bar_and_includes_the_estimators() {
        let bare = progress_line(5, 10, None);
        assert_eq!(bare, "[############------------] 5/10");
        assert_eq!(progress_line(0, 0, None), "[########################] 0/0");

        let stats = ProgressStats {
            sdc_rate: 0.25,
            sdc_ci_lo: 0.1,
            sdc_ci_hi: 0.45,
            strikes_per_sec: 1234.56,
            ns_per_inst: 8.9,
            eta_ms: 65_000,
            ..ProgressStats::default()
        };
        let rich = progress_line(10, 10, Some(&stats));
        assert!(
            rich.starts_with("[########################] 10/10"),
            "{rich}"
        );
        assert!(rich.contains("sdc 0.2500 [0.1000,0.4500]"), "{rich}");
        assert!(rich.contains("1234.6 strikes/s"), "{rich}");
        assert!(rich.contains("eta 1m05s"), "{rich}");
    }

    #[test]
    fn watch_snapshot_summarizes_stats_and_scrapes_campaign_counters() {
        let stats = "{\"queue_depth\":1,\"queue_capacity\":64,\"workers\":2,\
                     \"shutting_down\":false,\"accepted\":5,\"rejected\":1,\"completed\":3,\
                     \"failed\":1,\"canceled\":0,\"store_hits\":2,\"store_misses\":1,\
                     \"store_quarantined\":0,\"queue_peak\":3,\"job_p50_us\":120,\
                     \"job_p99_us\":950}";
        let metrics = "# TYPE turnpike_campaign_runs counter\nturnpike_campaign_runs 64\n\
                       # TYPE turnpike_serve_accepted counter\nturnpike_serve_accepted 5\n";
        let text = render_watch(stats, metrics);
        assert!(
            text.contains("queue 1/64  accepted 5  completed 3  failed 1"),
            "{text}"
        );
        assert!(text.contains("store hits 2  misses 1"), "{text}");
        assert!(text.contains("turnpike_campaign_runs 64"), "{text}");
        // Exposition lines other than campaign counters stay out of the
        // summary (the full text is one `reproduce submit --stats` away).
        assert!(!text.contains("turnpike_serve_accepted"), "{text}");

        assert!(render_watch("not json", metrics).contains("stats unavailable"));
    }

    #[test]
    fn fleet_watch_aggregates_reachable_workers_and_keeps_dead_ones_visible() {
        let stats = |depth: u64, completed: u64, busy: u64| {
            format!(
                "{{\"queue_depth\":{depth},\"queue_capacity\":64,\"workers\":2,\
                 \"accepted\":9,\"rejected\":1,\"completed\":{completed},\"failed\":0,\
                 \"busy_us\":{busy},\"uptime_us\":1000000}}"
            )
        };
        let workers = vec![
            ("127.0.0.1:8642".to_string(), Ok(stats(1, 4, 1_500_000))),
            ("127.0.0.1:8643".to_string(), Ok(stats(2, 3, 500_000))),
            (
                "127.0.0.1:8644".to_string(),
                Err("connection refused".to_string()),
            ),
        ];
        let text = render_fleet_watch(&workers);
        // Header counts only live workers; totals are fleet-wide sums.
        assert!(
            text.starts_with("fleet 2/3 up  queue 3/128  accepted 18"),
            "{text}"
        );
        assert!(text.contains("completed 7"), "{text}");
        // Utilization normalizes busy time by uptime × worker threads.
        assert!(
            text.contains("127.0.0.1:8642  queue 1/64  completed 4  failed 0  util 0.75"),
            "{text}"
        );
        assert!(
            text.contains("127.0.0.1:8643  queue 2/64  completed 3  failed 0  util 0.25"),
            "{text}"
        );
        assert!(
            text.contains("127.0.0.1:8644  unreachable: connection refused"),
            "{text}"
        );
    }
}
