//! Resilience event tracing.
//!
//! A [`Trace`] records the interesting *resilience* events of a run — region
//! lifecycle, store release decisions, strikes, detections, recoveries — as
//! a bounded sequence, without logging every instruction. Useful for
//! debugging region/verification interactions and for visualizing the
//! quarantine pipeline.
//!
//! Obtain one with [`Core::run_traced`](crate::Core::run_traced).

/// One traced event, stamped with the cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A region boundary committed: instance `seq` begins.
    RegionStart {
        /// Cycle of the boundary commit.
        cycle: u64,
        /// Dynamic region sequence number.
        seq: u64,
    },
    /// A region instance passed its WCDL window error-free.
    RegionVerified {
        /// Cycle at which verification was processed.
        cycle: u64,
        /// Dynamic region sequence number.
        seq: u64,
    },
    /// A regular store bypassed verification via the WAR-free check.
    WarFreeRelease {
        /// Issue cycle.
        cycle: u64,
        /// Store address.
        addr: u64,
    },
    /// A checkpoint bypassed verification via hardware coloring.
    ColoredRelease {
        /// Issue cycle.
        cycle: u64,
        /// Checkpointed register.
        reg: u8,
        /// Assigned color.
        color: u8,
    },
    /// A store (regular or checkpoint fallback) entered the gated SB.
    Quarantined {
        /// Issue cycle.
        cycle: u64,
        /// Owning dynamic region.
        seq: u64,
    },
    /// A quarantined entry drained to cache after verification.
    SbRelease {
        /// Release cycle.
        cycle: u64,
        /// Owning dynamic region.
        seq: u64,
    },
    /// A particle strike landed.
    Strike {
        /// Strike cycle.
        cycle: u64,
    },
    /// An error was detected (sensor or parity).
    Detection {
        /// Detection cycle.
        cycle: u64,
    },
    /// Recovery ran: unverified state squashed, `target` restarted.
    Recovery {
        /// Cycle recovery began.
        cycle: u64,
        /// Dynamic region instance re-executed.
        target_seq: u64,
        /// PC execution resumed from.
        resume_pc: u32,
    },
}

impl TraceEvent {
    /// The cycle stamp of the event.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::RegionStart { cycle, .. }
            | TraceEvent::RegionVerified { cycle, .. }
            | TraceEvent::WarFreeRelease { cycle, .. }
            | TraceEvent::ColoredRelease { cycle, .. }
            | TraceEvent::Quarantined { cycle, .. }
            | TraceEvent::SbRelease { cycle, .. }
            | TraceEvent::Strike { cycle }
            | TraceEvent::Detection { cycle }
            | TraceEvent::Recovery { cycle, .. } => cycle,
        }
    }
}

/// A bounded event recorder (oldest events are dropped past the cap).
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Events dropped because the buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// A trace holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Record an event.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind, selected by a predicate.
    pub fn filter<'a, P>(&'a self, pred: P) -> impl Iterator<Item = &'a TraceEvent>
    where
        P: Fn(&TraceEvent) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(e))
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_cap() {
        let mut t = Trace::new(2);
        t.push(TraceEvent::Strike { cycle: 1 });
        t.push(TraceEvent::Detection { cycle: 2 });
        t.push(TraceEvent::Strike { cycle: 3 }); // dropped
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events()[0].cycle(), 1);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Trace::default();
        t.push(TraceEvent::RegionStart { cycle: 5, seq: 1 });
        t.push(TraceEvent::Detection { cycle: 9 });
        t.push(TraceEvent::RegionStart { cycle: 12, seq: 2 });
        let starts: Vec<_> = t
            .filter(|e| matches!(e, TraceEvent::RegionStart { .. }))
            .collect();
        assert_eq!(starts.len(), 2);
    }

    #[test]
    fn cycles_are_accessible_for_all_variants() {
        let evs = [
            TraceEvent::RegionStart { cycle: 1, seq: 0 },
            TraceEvent::RegionVerified { cycle: 2, seq: 0 },
            TraceEvent::WarFreeRelease { cycle: 3, addr: 8 },
            TraceEvent::ColoredRelease {
                cycle: 4,
                reg: 1,
                color: 2,
            },
            TraceEvent::Quarantined { cycle: 5, seq: 0 },
            TraceEvent::SbRelease { cycle: 6, seq: 0 },
            TraceEvent::Strike { cycle: 7 },
            TraceEvent::Detection { cycle: 8 },
            TraceEvent::Recovery {
                cycle: 9,
                target_seq: 0,
                resume_pc: 0,
            },
        ];
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
        }
    }
}
