//! Functions, programs, and static data segments.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::Inst;
use crate::reg::Reg;

/// A single-function IR program body.
///
/// Turnpike's evaluation kernels are single-function loop nests (calls inside
/// the simulated window behave like inlined code as far as region-level
/// verification is concerned), so the IR models exactly one function per
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of virtual registers (all `Reg` indices are `< num_regs`).
    pub num_regs: u32,
    /// Registers whose values are defined *before* entry (program inputs).
    /// These are treated as live-in at the entry block and are checkpointed
    /// by the entry region's preamble.
    pub params: Vec<Reg>,
}

impl Function {
    /// Block accessor.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable block accessor.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &BasicBlock)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count, including terminators.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len_with_term).sum()
    }

    /// Number of store instructions (regular + checkpoint) in the body.
    pub fn store_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::store_count).sum()
    }

    /// Number of checkpoint instructions in the body.
    pub fn ckpt_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.is_ckpt())
            .count()
    }

    /// Number of region boundary markers in the body.
    pub fn boundary_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.is_boundary())
            .count()
    }

    /// Check the structural well-formedness invariants of this function
    /// (see [`crate::verify::verify_function`]). This is the hook the
    /// compiler's pass manager calls after every pass in debug/test builds.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn verify(&self) -> Result<(), crate::verify::VerifyError> {
        crate::verify::verify_function(self)
    }

    /// Remove all `Nop` placeholders.
    pub fn sweep_nops(&mut self) {
        for b in &mut self.blocks {
            b.sweep_nops();
        }
    }

    /// A minimal function: a single empty block returning nothing.
    /// Useful as a test fixture.
    pub fn empty(name: &str) -> Self {
        Function {
            name: name.to_string(),
            blocks: vec![BasicBlock::new(Terminator::Ret { value: None })],
            entry: BlockId(0),
            num_regs: 0,
            params: Vec::new(),
        }
    }

    /// Iterate over every instruction with its location.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> {
        self.iter_blocks().flat_map(|(id, b)| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(i, inst)| (id, i, inst))
        })
    }
}

/// Static data initialized before execution starts.
///
/// The kernel's arrays live here; the segment is loaded into simulated memory
/// at `base` before cycle 0 (and before the golden interpreter runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address (8-byte aligned).
    pub base: u64,
    /// Initial 64-bit words, laid out contiguously from `base`.
    pub words: Vec<i64>,
}

impl DataSegment {
    /// A segment of `len` zero words at `base`.
    pub fn zeroed(base: u64, len: usize) -> Self {
        DataSegment {
            base,
            words: vec![0; len],
        }
    }

    /// A segment with explicit initial contents.
    pub fn with_words(base: u64, words: Vec<i64>) -> Self {
        DataSegment { base, words }
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + self.byte_len()
    }
}

/// A complete IR program: one function plus its initial data image and
/// initial register values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The program body.
    pub func: Function,
    /// Static data segment.
    pub data: DataSegment,
    /// Initial values for the function's `params` registers
    /// (parallel to `func.params`; missing entries default to 0).
    pub param_values: Vec<i64>,
}

impl Program {
    /// A program with zero-initialized parameters.
    pub fn new(func: Function, data: DataSegment) -> Self {
        let param_values = vec![0; func.params.len()];
        Program {
            func,
            data,
            param_values,
        }
    }

    /// A program with explicit parameter values.
    ///
    /// # Panics
    ///
    /// Panics if `param_values.len() != func.params.len()`.
    pub fn with_params(func: Function, data: DataSegment, param_values: Vec<i64>) -> Self {
        assert_eq!(
            param_values.len(),
            func.params.len(),
            "one initial value per parameter register"
        );
        Program {
            func,
            data,
            param_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Addr;
    use crate::reg::Operand;

    #[test]
    fn empty_function_counts() {
        let f = Function::empty("f");
        assert_eq!(f.inst_count(), 1); // the terminator
        assert_eq!(f.store_count(), 0);
        assert_eq!(f.ckpt_count(), 0);
        assert_eq!(f.boundary_count(), 0);
    }

    #[test]
    fn counts_track_insertions() {
        let mut f = Function::empty("f");
        f.num_regs = 2;
        let b = f.block_mut(BlockId(0));
        b.insts.push(Inst::Store {
            src: Operand::Imm(1),
            addr: Addr::abs(0x1000),
        });
        b.insts.push(Inst::Ckpt { reg: Reg(0) });
        b.insts.push(Inst::RegionBoundary { id: 0 });
        assert_eq!(f.store_count(), 2);
        assert_eq!(f.ckpt_count(), 1);
        assert_eq!(f.boundary_count(), 1);
        assert_eq!(f.iter_insts().count(), 3);
    }

    #[test]
    fn data_segment_geometry() {
        let d = DataSegment::zeroed(0x1000, 4);
        assert_eq!(d.byte_len(), 32);
        assert_eq!(d.end(), 0x1020);
        let d2 = DataSegment::with_words(0x2000, vec![1, 2, 3]);
        assert_eq!(d2.words[2], 3);
    }

    #[test]
    #[should_panic(expected = "one initial value per parameter")]
    fn with_params_checks_arity() {
        let mut f = Function::empty("f");
        f.params = vec![Reg(0)];
        f.num_regs = 1;
        let _ = Program::with_params(f, DataSegment::zeroed(0, 0), vec![]);
    }
}
