//! Basic blocks and terminators.

use crate::inst::Inst;
use crate::reg::{Operand, Reg};
use std::fmt;

/// Identifier of a basic block within a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Numeric index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Control-flow terminator of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition register (nonzero = taken).
        cond: Reg,
        /// Successor when the condition is nonzero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Function return with an optional value.
    Ret {
        /// Returned value, if any.
        value: Option<Operand>,
    },
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![then_bb]
                } else {
                    vec![then_bb, else_bb]
                }
            }
            Terminator::Ret { .. } => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Terminator::Jump(_) => vec![],
            Terminator::Branch { cond, .. } => vec![cond],
            Terminator::Ret { value } => value.and_then(Operand::reg).into_iter().collect(),
        }
    }

    /// Whether this terminator leaves the function.
    pub fn is_ret(&self) -> bool {
        matches!(self, Terminator::Ret { .. })
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jmp {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {cond}, {then_bb}, {else_bb}"),
            Terminator::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Ret { value: None } => write!(f, "ret"),
        }
    }
}

/// A straight-line sequence of instructions ending in a [`Terminator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Instructions in program order (terminator excluded).
    pub insts: Vec<Inst>,
    /// Block terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// An empty block ending in the given terminator.
    pub fn new(term: Terminator) -> Self {
        BasicBlock {
            insts: Vec::new(),
            term,
        }
    }

    /// Number of instructions, including the terminator.
    pub fn len_with_term(&self) -> usize {
        self.insts.len() + 1
    }

    /// Number of store instructions (regular stores plus checkpoints).
    pub fn store_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_store()).count()
    }

    /// Remove `Nop` placeholders left behind by passes.
    pub fn sweep_nops(&mut self) {
        self.insts.retain(|i| !matches!(i, Inst::Nop));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Addr;

    #[test]
    fn successors_dedupe_same_target() {
        let t = Terminator::Branch {
            cond: Reg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(t.successors(), vec![BlockId(1)]);
        assert_eq!(t.uses(), vec![Reg(0)]);
    }

    #[test]
    fn ret_has_no_successors() {
        let t = Terminator::Ret {
            value: Some(Operand::Reg(Reg(2))),
        };
        assert!(t.successors().is_empty());
        assert_eq!(t.uses(), vec![Reg(2)]);
        assert!(t.is_ret());
        assert!(!Terminator::Jump(BlockId(0)).is_ret());
    }

    #[test]
    fn block_store_count_and_sweep() {
        let mut bb = BasicBlock::new(Terminator::Ret { value: None });
        bb.insts.push(Inst::Store {
            src: Operand::Imm(0),
            addr: Addr::abs(0x1000),
        });
        bb.insts.push(Inst::Nop);
        bb.insts.push(Inst::Ckpt { reg: Reg(1) });
        assert_eq!(bb.store_count(), 2);
        assert_eq!(bb.len_with_term(), 4);
        bb.sweep_nops();
        assert_eq!(bb.insts.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Terminator::Jump(BlockId(3)).to_string(), "jmp bb3");
        assert_eq!(
            Terminator::Branch {
                cond: Reg(1),
                then_bb: BlockId(0),
                else_bb: BlockId(2)
            }
            .to_string(),
            "br v1, bb0, bb2"
        );
        assert_eq!(Terminator::Ret { value: None }.to_string(), "ret");
        assert_eq!(BlockId(4).to_string(), "bb4");
        assert_eq!(BlockId(4).index(), 4);
    }
}
