//! WCDL sweep: how Turnstile and Turnpike scale as the sensor detection
//! latency grows (fewer sensors → longer quarantine), plus the sensor count
//! each WCDL implies under the Figure-18 grid model.
//!
//! ```sh
//! cargo run --release --example wcdl_sweep
//! ```

use turnpike::resilience::{run_kernel, RunSpec, Scheme};
use turnpike::sensor::SensorGrid;
use turnpike::workloads::{kernel_by_name, Scale, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel =
        kernel_by_name(Suite::Cpu2017, "bwaves", Scale::Smoke).expect("bwaves is in the catalog");
    let base = run_kernel(&kernel.program, &RunSpec::new(Scheme::Baseline))?;
    let base_cycles = base.outcome.stats.cycles as f64;
    println!(
        "kernel {}: baseline {} cycles\n",
        kernel.name, base.outcome.stats.cycles
    );
    println!(
        "{:>6} {:>9} {:>12} {:>12}",
        "WCDL", "sensors", "Turnstile", "Turnpike"
    );
    for wcdl in [10u64, 20, 30, 40, 50] {
        let sensors = SensorGrid::sensors_for_wcdl(wcdl, 1.0, 2.5);
        let ts = run_kernel(
            &kernel.program,
            &RunSpec::new(Scheme::Turnstile).with_wcdl(wcdl),
        )?;
        let tp = run_kernel(
            &kernel.program,
            &RunSpec::new(Scheme::Turnpike).with_wcdl(wcdl),
        )?;
        let nts = ts.outcome.stats.cycles as f64 / base_cycles;
        let ntp = tp.outcome.stats.cycles as f64 / base_cycles;
        println!("{wcdl:>6} {sensors:>9} {nts:>11.3}x {ntp:>11.3}x");
        assert!(
            ntp <= nts + 1e-9,
            "turnpike must dominate turnstile at every WCDL"
        );
    }
    Ok(())
}
