//! Harness observability: timeline export and histogram summaries.
//!
//! Backs `reproduce trace` (a Perfetto-loadable Chrome trace or raw JSONL
//! event stream of one kernel under one scheme) and the histogram summary
//! block of `BENCH_reproduce.json`. Trace runs are deterministic: for a
//! resilient scheme one datapath strike is injected at 25% of the kernel's
//! fault-free cycle count, so every export shows a full
//! strike→detection→recovery arc at a reproducible spot.

use turnpike_metrics::{Hist, MetricSet};
use turnpike_resilience::{
    fault_campaign_forked, CampaignConfig, ForkStats, RunError, RunSpec, Scheme,
};
use turnpike_sim::{shared_sink, ChromeTrace, Core, Fault, FaultKind, FaultPlan, JsonlSink};
use turnpike_workloads::{all_kernels, Kernel, Scale};

/// Trace output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (`chrome://tracing`, ui.perfetto.dev).
    Chrome,
    /// One [`turnpike_sim::TraceEvent`] per line, stable schema.
    Jsonl,
}

impl TraceFormat {
    /// Parse a CLI name (`chrome` | `jsonl`).
    pub fn parse(name: &str) -> Option<TraceFormat> {
        match name {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }
}

/// Find a kernel by name across all suites.
pub fn find_kernel(name: &str, scale: Scale) -> Option<Kernel> {
    all_kernels(scale).into_iter().find(|k| k.name == name)
}

/// The deterministic fault plan of a trace run: one datapath strike at 25%
/// of the fault-free cycle count, detected within `min(wcdl, 7)` cycles.
/// Baseline (non-resilient) schemes trace fault-free.
fn trace_plan(spec: &RunSpec, fault_free_cycles: u64) -> FaultPlan {
    if !spec.scheme.is_resilient() {
        return FaultPlan::none();
    }
    FaultPlan::new(vec![Fault {
        strike_cycle: (fault_free_cycles / 4).max(1),
        detect_latency: spec.wcdl.min(7),
        kind: FaultKind::Datapath { bit: 21 },
    }])
}

/// Trace `kernel` under `spec` and render the event stream in `format`.
///
/// # Errors
///
/// Propagates compile/simulate failures.
pub fn export_trace(
    kernel: &Kernel,
    spec: &RunSpec,
    format: TraceFormat,
) -> Result<String, RunError> {
    let compiled = turnpike_compiler::compile(&kernel.program, &spec.compiler_config())?;
    let sc = spec.sim_config();
    // Fault-free probe run fixes the strike point.
    let horizon = Core::new(&compiled.program, sc.clone()).run()?.stats.cycles;
    let plan = trace_plan(spec, horizon);
    match format {
        TraceFormat::Chrome => {
            let sink = shared_sink(ChromeTrace::new());
            let mut core = Core::new(&compiled.program, sc);
            core.attach_sink(sink.clone());
            core.run_with_faults(&plan)?;
            let rendered = sink.borrow().render();
            Ok(rendered)
        }
        TraceFormat::Jsonl => {
            let sink = shared_sink(JsonlSink::new(Vec::new()));
            let mut core = Core::new(&compiled.program, sc);
            core.attach_sink(sink.clone());
            core.run_with_faults(&plan)?;
            // The run consumed the core, releasing its sink handle.
            let Ok(js) = std::rc::Rc::try_unwrap(sink) else {
                unreachable!("core released its sink handle")
            };
            let js = js.into_inner();
            Ok(String::from_utf8(js.into_inner()).expect("trace events are ASCII"))
        }
    }
}

/// Deterministic fault-injection probe feeding the detection-latency and
/// recovery-penalty histograms of the `BENCH_reproduce.json` summary: the
/// figure grid is fault-free, so those two distributions need strikes. One
/// smoke kernel, full Turnpike, 8 seeded single-strike runs. Also returns
/// the campaign's [`ForkStats`] — the `"fork"` block of
/// `BENCH_reproduce.json` — showing how many strike runs forked from
/// fault-free prefix snapshots instead of re-simulating from scratch.
///
/// # Errors
///
/// Propagates compile/simulate failures.
pub fn fault_probe_metrics(threads: usize) -> Result<(MetricSet, ForkStats), RunError> {
    let kernel = find_kernel("bwaves", Scale::Smoke).expect("bwaves is in the catalog");
    let spec = RunSpec::new(Scheme::Turnpike).with_histograms();
    let cfg = CampaignConfig {
        runs: 8,
        seed: 0xB0B5,
        strikes_per_run: 1,
        ..Default::default()
    };
    let (report, _records, fork) =
        fault_campaign_forked(&kernel.program, &spec, &cfg, threads.max(1))?;
    Ok((report.metrics, fork))
}

/// The histogram keys summarized in `BENCH_reproduce.json`, in output order.
const SUMMARY_KEYS: [Hist; 6] = [
    Hist::SbResidency,
    Hist::VerifyLatency,
    Hist::DetectLatency,
    Hist::RecoveryPenalty,
    Hist::CompileMicros,
    Hist::SimMicros,
];

/// Render the registry's histograms as the `"histograms"` JSON object of
/// `BENCH_reproduce.json`: per key, sample count, p50, p99, and max.
/// Keys with no samples are omitted.
pub fn hist_summary_json(m: &MetricSet, indent: &str) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for key in SUMMARY_KEYS {
        let Some(h) = m.hist(key) else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{indent}  \"{}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
            key.name(),
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.max()
        ));
    }
    if !first {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::new(Scheme::Turnpike)
    }

    #[test]
    fn chrome_trace_loads_for_every_ladder_scheme() {
        let k = find_kernel("bwaves", Scale::Smoke).unwrap();
        for scheme in Scheme::LADDER {
            let json = export_trace(&k, &RunSpec::new(scheme), TraceFormat::Chrome).unwrap();
            assert!(json.starts_with("{\"traceEvents\":["), "{scheme}");
            assert!(json.ends_with("]}\n") || json.ends_with("]}"), "{scheme}");
            // The injected strike shows up as a detection/recovery arc.
            // Under the adaptive rung the fixed strike may land in an
            // unprotected region, where it is silently absorbed by design.
            assert!(json.contains("\"strike\""), "{scheme}: no strike slice");
            if scheme != Scheme::Adaptive {
                assert!(json.contains("\"recovery\""), "{scheme}: no recovery");
            }
        }
    }

    #[test]
    fn jsonl_trace_is_deterministic() {
        let k = find_kernel("hmmer", Scale::Smoke).unwrap();
        let a = export_trace(&k, &spec(), TraceFormat::Jsonl).unwrap();
        let b = export_trace(&k, &spec(), TraceFormat::Jsonl).unwrap();
        assert_eq!(a, b);
        assert!(a.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(a.contains("\"kind\":\"strike\""));
    }

    #[test]
    fn fault_probe_fills_detection_histograms() {
        let (m, fork) = fault_probe_metrics(2).unwrap();
        assert!(m.hist(Hist::DetectLatency).unwrap().count() >= 8);
        assert!(m.hist(Hist::RecoveryPenalty).unwrap().count() >= 8);
        // Every injected run is accounted as a fork hit or a miss.
        assert_eq!(fork.hits + fork.misses, 8);
        let json = hist_summary_json(&m, "  ");
        assert!(json.contains("\"sim.hist.detect_latency_cycles\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn summary_omits_empty_histograms() {
        assert_eq!(hist_summary_json(&MetricSet::new(), ""), "{}");
    }

    #[test]
    fn format_and_kernel_lookup() {
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert!(find_kernel("bwaves", Scale::Smoke).is_some());
        assert!(find_kernel("not-a-kernel", Scale::Smoke).is_none());
    }
}
