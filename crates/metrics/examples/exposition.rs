//! Print the Prometheus text exposition of an empty registry: every
//! counter, gauge, and histogram the workspace can ever report, in
//! declaration order, at zero.
//!
//! This is the exposition's *schema* — the set and order of `# TYPE` and
//! sample lines is independent of what a run recorded — and it is pinned
//! byte-for-byte against `crates/bench/golden/metrics_exposition.txt`.
//! Regenerate (only when adding a metric is intended) with:
//!
//! ```text
//! cargo run -p turnpike-metrics --example exposition > crates/bench/golden/metrics_exposition.txt
//! ```

fn main() {
    print!(
        "{}",
        turnpike_metrics::prometheus_text(&turnpike_metrics::MetricSet::new())
    );
}
