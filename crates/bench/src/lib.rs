//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! Each `figN`/`table1` function produces a [`Table`] whose rows mirror the
//! series the paper plots; the `reproduce` binary prints them (optionally as
//! JSON). The numbers are produced by the same public APIs a downstream user
//! would call — nothing here bypasses the library.
//!
//! Shapes, not absolutes: our substrate is a from-scratch simulator and the
//! workloads are synthetic stand-ins, so the claims to check are orderings,
//! trends, and rough factors (see `EXPERIMENTS.md` for paper-vs-measured).

pub mod coordinate;
pub mod engine;
pub mod explore;
pub mod figures;
pub mod obs;
pub mod report;
pub mod service;
pub mod table;
pub mod watch;

pub use coordinate::{coordinate, CoordinateConfig, CoordinateReport, WorkerShare};
pub use engine::Engine;
pub use figures::*;
pub use obs::{export_trace, fault_probe_metrics, find_kernel, hist_summary_json, TraceFormat};
pub use report::{upsert_block, write_block};
pub use service::{campaign_payload, uniform_store_key_material, CampaignTotals, EngineExecutor};
pub use table::{json_number, json_string, Table};
pub use watch::{fmt_eta, progress_line, render_fleet_watch, render_watch};
