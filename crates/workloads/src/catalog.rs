//! The 36-benchmark catalog.
//!
//! One entry per benchmark of the paper's evaluation (16 × SPEC CPU2006,
//! 13 × SPEC CPU2017, 7 × SPLASH3). Each maps onto a [`crate::templates`] shape
//! with parameters chosen to echo what makes the original interesting for
//! the paper's mechanisms; see the module docs of [`crate`] for the axes.

use crate::templates::{
    branchy, butterfly, gap_stencil, high_pressure, matrix, pointer_chase, reduction, rmw_table,
    sort_pass, stencil, streaming,
};
use turnpike_ir::Program;

/// Benchmark suite a kernel stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Cpu2006,
    /// SPEC CPU2017.
    Cpu2017,
    /// SPLASH3.
    Splash3,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Cpu2006 => write!(f, "SPEC CPU2006"),
            Suite::Cpu2017 => write!(f, "SPEC CPU2017"),
            Suite::Splash3 => write!(f, "SPLASH3"),
        }
    }
}

/// How large the kernels should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small trip counts for unit/integration tests.
    Smoke,
    /// Evaluation size, used by the `reproduce` harness.
    Full,
}

impl Scale {
    fn f(self, full: i64) -> i64 {
        match self {
            Scale::Smoke => (full / 16).max(8),
            Scale::Full => full,
        }
    }
}

/// Stable identity of a catalog kernel. Two kernels with the same id have
/// byte-identical programs — `build` is a pure function of `(name, suite,
/// scale)` — so the id is a sound memoization key for compile and
/// simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId {
    /// Which suite the kernel stands in for.
    pub suite: Suite,
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// The size the kernel was built at.
    pub scale: Scale,
}

/// A named kernel with its suite and program.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Which suite it stands in for.
    pub suite: Suite,
    /// The size this instance was built at.
    pub scale: Scale,
    /// The IR program.
    pub program: Program,
}

impl Kernel {
    /// The kernel's cache identity (see [`KernelId`]).
    pub fn id(&self) -> KernelId {
        KernelId {
            suite: self.suite,
            name: self.name,
            scale: self.scale,
        }
    }
}

fn build(name: &'static str, suite: Suite, s: Scale) -> Kernel {
    use Suite::*;
    let program = match (name, suite) {
        // ---- SPEC CPU2006 -------------------------------------------------
        ("astar", Cpu2006) => pointer_chase(name, 256, s.f(2400), 9),
        ("bwaves", Cpu2006) => streaming(name, s.f(1500), 3, 6),
        ("bzip2", Cpu2006) => sort_pass(name, s.f(900) as usize, 16),
        ("gcc", Cpu2006) => branchy(name, s.f(2200)),
        ("gemsfdtd", Cpu2006) => high_pressure(name, s.f(1000), 8, 26),
        ("gobmk", Cpu2006) => branchy(name, s.f(1800)),
        ("hmmer", Cpu2006) => rmw_table(name, s.f(1600), 64),
        ("leslie3d", Cpu2006) => stencil(name, s.f(700), 4, 3),
        ("libquan", Cpu2006) => streaming(name, s.f(1800), 2, 5),
        ("mcf", Cpu2006) => pointer_chase(name, 2048, s.f(2000), 11),
        ("milc", Cpu2006) => gap_stencil(name, s.f(900), 0),
        ("omnetpp", Cpu2006) => pointer_chase(name, 1024, s.f(1800), 5),
        ("perlbench", Cpu2006) => rmw_table(name, s.f(1500), 128),
        ("soplex", Cpu2006) => matrix(name, s.f(70)),
        ("xalan", Cpu2006) => pointer_chase(name, 512, s.f(1600), 7),
        ("zeusmp", Cpu2006) => stencil(name, s.f(500), 8, 4),
        // ---- SPEC CPU2017 -------------------------------------------------
        ("bwaves", Cpu2017) => streaming(name, s.f(1200), 4, 8),
        ("cactubssn", Cpu2017) => stencil(name, s.f(600), 10, 3),
        ("deepsjeng", Cpu2017) => reduction(name, s.f(2000), 2, 64),
        ("exchange2", Cpu2017) => streaming(name, s.f(1400), 2, 8),
        ("fotonik3d", Cpu2017) => gap_stencil(name, s.f(850), 1),
        ("lbm", Cpu2017) => high_pressure(name, s.f(1100), 10, 24),
        ("leela", Cpu2017) => reduction(name, s.f(2400), 2, 128),
        ("mcf", Cpu2017) => pointer_chase(name, 4096, s.f(2200), 13),
        ("nab", Cpu2017) => reduction(name, s.f(1800), 2, 96),
        ("roms", Cpu2017) => streaming(name, s.f(1000), 3, 7),
        ("x264", Cpu2017) => rmw_table(name, s.f(1700), 256),
        ("xalan", Cpu2017) => pointer_chase(name, 768, s.f(1500), 6),
        ("xz", Cpu2017) => rmw_table(name, s.f(1500), 512),
        // ---- SPLASH3 ------------------------------------------------------
        ("cholesky", Splash3) => matrix(name, s.f(80)),
        ("fft", Splash3) => butterfly(name, 256, s.f(48) / 8),
        ("lu-cg", Splash3) => matrix(name, s.f(64)),
        ("ocean-ng", Splash3) => gap_stencil(name, s.f(950), 0),
        ("radiosity", Splash3) => branchy(name, s.f(1900)),
        ("radix", Splash3) => sort_pass(name, s.f(1100) as usize, 32),
        ("water-sp", Splash3) => reduction(name, s.f(2100), 2, 64),
        _ => unreachable!("unknown kernel {name}/{suite:?}"),
    };
    Kernel {
        name,
        suite,
        scale: s,
        program,
    }
}

/// The names per suite, in the paper's figure order.
pub const CPU2006: [&str; 16] = [
    "astar",
    "bwaves",
    "bzip2",
    "gcc",
    "gemsfdtd",
    "gobmk",
    "hmmer",
    "leslie3d",
    "libquan",
    "mcf",
    "milc",
    "omnetpp",
    "perlbench",
    "soplex",
    "xalan",
    "zeusmp",
];

/// SPEC CPU2017 names.
pub const CPU2017: [&str; 13] = [
    "bwaves",
    "cactubssn",
    "deepsjeng",
    "exchange2",
    "fotonik3d",
    "lbm",
    "leela",
    "mcf",
    "nab",
    "roms",
    "x264",
    "xalan",
    "xz",
];

/// SPLASH3 names.
pub const SPLASH3: [&str; 7] = [
    "cholesky",
    "fft",
    "lu-cg",
    "ocean-ng",
    "radiosity",
    "radix",
    "water-sp",
];

/// All 36 kernels in the paper's figure order.
pub fn all_kernels(scale: Scale) -> Vec<Kernel> {
    let mut v = Vec::with_capacity(36);
    for n in CPU2006 {
        v.push(build(n, Suite::Cpu2006, scale));
    }
    for n in CPU2017 {
        v.push(build(n, Suite::Cpu2017, scale));
    }
    for n in SPLASH3 {
        v.push(build(n, Suite::Splash3, scale));
    }
    v
}

/// Look up one kernel by suite and name.
pub fn kernel_by_name(suite: Suite, name: &str, scale: Scale) -> Option<Kernel> {
    let names: &[&'static str] = match suite {
        Suite::Cpu2006 => &CPU2006,
        Suite::Cpu2017 => &CPU2017,
        Suite::Splash3 => &SPLASH3,
    };
    names
        .iter()
        .find(|&&n| n == name)
        .map(|&n| build(n, suite, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::interp;

    #[test]
    fn all_36_build_and_terminate() {
        let kernels = all_kernels(Scale::Smoke);
        assert_eq!(kernels.len(), 36);
        for k in &kernels {
            turnpike_ir::verify_function(&k.program.func)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let out = interp::run(&k.program, &interp::InterpConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(out.dyn_insts > 50, "{} too trivial", k.name);
        }
    }

    #[test]
    fn full_scale_is_larger_than_smoke() {
        let smoke = kernel_by_name(Suite::Cpu2017, "leela", Scale::Smoke).unwrap();
        let full = kernel_by_name(Suite::Cpu2017, "leela", Scale::Full).unwrap();
        let a = interp::run(&smoke.program, &interp::InterpConfig::default()).unwrap();
        let b = interp::run(&full.program, &interp::InterpConfig::default()).unwrap();
        assert!(b.dyn_insts > 4 * a.dyn_insts);
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name(Suite::Cpu2006, "mcf", Scale::Smoke).is_some());
        assert!(kernel_by_name(Suite::Cpu2017, "mcf", Scale::Smoke).is_some());
        assert!(kernel_by_name(Suite::Splash3, "mcf", Scale::Smoke).is_none());
        assert!(kernel_by_name(Suite::Splash3, "radix", Scale::Smoke).is_some());
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Cpu2006.to_string(), "SPEC CPU2006");
        assert_eq!(Suite::Splash3.to_string(), "SPLASH3");
    }

    #[test]
    fn same_name_different_suite_differs() {
        let a = kernel_by_name(Suite::Cpu2006, "bwaves", Scale::Smoke).unwrap();
        let b = kernel_by_name(Suite::Cpu2017, "bwaves", Scale::Smoke).unwrap();
        assert_ne!(a.program, b.program);
    }
}
