//! Hardware coloring for checkpoint fast release (paper §4.3.2).
//!
//! Releasing a checkpoint store to cache *without* verification is unsafe in
//! general: a corrupted checkpoint would overwrite the last good value in the
//! register's checkpoint slot, so recovery would restore garbage (paper
//! Figure 16). Coloring fixes this with alternative storage: each register
//! owns a pool of colored slots, and three maps track them —
//!
//! * **AC** (available colors): colors free for the next checkpoint;
//! * **UC** (used colors): per unverified region, the color each checkpoint
//!   took (kept alongside the RBB entry);
//! * **VC** (verified colors): the color of the last *verified* checkpoint,
//!   which recovery reads.
//!
//! A checkpoint that finds a free color in AC writes slot `(reg, color)`
//! immediately and bypasses the store buffer; if AC is empty it falls back
//! to the quarantine path. When a region is verified, its used colors become
//! verified (the old verified colors return to AC); when a region is
//! squashed by recovery, its used colors return to AC and VC is untouched.

/// The three color maps of one core.
#[derive(Debug, Clone)]
pub struct Coloring {
    colors: u8,
    /// Bitmask of available colors per register.
    ac: Vec<u8>,
    /// Verified color per register.
    vc: Vec<Option<u8>>,
    /// (region_seq, reg, color) tuples for unverified regions.
    uc: Vec<(u64, u8, u8)>,
    /// Checkpoints that took the fast path.
    pub fast_released: u64,
    /// Checkpoints that fell back to quarantine because AC was empty.
    pub fallbacks: u64,
}

impl Coloring {
    /// A coloring pool with `colors` slots per register (the paper uses 4)
    /// over `num_regs` registers.
    pub fn new(num_regs: usize, colors: u8) -> Self {
        assert!((1..=8).contains(&colors), "1..=8 colors supported");
        let full = if colors == 8 {
            0xff
        } else {
            (1u8 << colors) - 1
        };
        Coloring {
            colors,
            ac: vec![full; num_regs],
            vc: vec![None; num_regs],
            uc: Vec::new(),
            fast_released: 0,
            fallbacks: 0,
        }
    }

    /// Pre-verify color 0 of `reg` (loader-initialized program inputs).
    pub fn preverify(&mut self, reg: u8) {
        let r = reg as usize;
        self.vc[r] = Some(0);
        self.ac[r] &= !1;
    }

    /// Try to take a color for a checkpoint of `reg` in region `region_seq`.
    /// Returns the assigned color, or `None` when the pool is exhausted
    /// (caller falls back to SB quarantine).
    pub fn try_assign(&mut self, reg: u8, region_seq: u64) -> Option<u8> {
        let r = reg as usize;
        // Reuse the color this region already holds for the register (a
        // re-executed or repeated checkpoint overwrites its own slot).
        if let Some(&(_, _, c)) = self
            .uc
            .iter()
            .find(|&&(s, rr, _)| s == region_seq && rr == reg)
        {
            self.fast_released += 1;
            return Some(c);
        }
        // The slot recovery reads must never hold unverified data. While a
        // register has a verified color, that color is absent from AC by
        // construction; while it has none, recovery falls back to slot 0,
        // so color 0 is equally off-limits until a checkpoint verifies.
        let avail = if self.vc[r].is_none() {
            self.ac[r] & !1
        } else {
            self.ac[r]
        };
        if avail == 0 {
            self.fallbacks += 1;
            return None;
        }
        let c = avail.trailing_zeros() as u8;
        self.ac[r] &= !(1 << c);
        self.uc.push((region_seq, reg, c));
        self.fast_released += 1;
        Some(c)
    }

    /// The verified color of `reg` (what recovery reads); color 0 when the
    /// register has never had a verified checkpoint.
    pub fn verified_color(&self, reg: u8) -> u8 {
        self.vc[reg as usize].unwrap_or(0)
    }

    /// Region `region_seq` was verified: its used colors become the verified
    /// colors; displaced verified colors return to AC.
    pub fn on_region_verified(&mut self, region_seq: u64) {
        let mut taken = Vec::new();
        self.uc.retain(|&(s, reg, c)| {
            if s == region_seq {
                taken.push((reg, c));
                false
            } else {
                true
            }
        });
        for (reg, c) in taken {
            let r = reg as usize;
            if let Some(old) = self.vc[r] {
                self.ac[r] |= 1 << old;
            }
            self.vc[r] = Some(c);
        }
    }

    /// Regions at or after `from_seq` were squashed: their colors return to
    /// AC; VC is untouched.
    pub fn on_squash(&mut self, from_seq: u64) {
        let mut freed = Vec::new();
        self.uc.retain(|&(s, reg, c)| {
            if s >= from_seq {
                freed.push((reg, c));
                false
            } else {
                true
            }
        });
        for (reg, c) in freed {
            self.ac[reg as usize] |= 1 << c;
        }
    }

    /// Number of colors configured per register.
    pub fn colors(&self) -> u8 {
        self.colors
    }

    /// Replay equivalence against a golden-run pool whose region sequence
    /// numbers trail this one's by `ds`. AC/VC must match exactly (they are
    /// per-register state with no time component); UC must match in order
    /// with shifted sequence numbers — `try_assign`'s reuse scan and the
    /// verify/squash retains walk UC in order, so order is behavior. The
    /// `fast_released`/`fallbacks` counters feed no simulation output and
    /// are not compared.
    pub(crate) fn replay_equivalent(&self, golden: &Coloring, ds: u64) -> bool {
        self.ac == golden.ac
            && self.vc == golden.vc
            && self.uc.len() == golden.uc.len()
            && self
                .uc
                .iter()
                .zip(golden.uc.iter())
                .all(|(&(s, r, c), &(gs, gr, gc))| s == gs.wrapping_add(ds) && r == gr && c == gc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_walks_the_pool() {
        let mut c = Coloring::new(32, 4);
        // Slot 0 is the recovery default while nothing is verified, so the
        // usable pool is colors 1..4 until a checkpoint verifies.
        assert_eq!(c.try_assign(3, 0), Some(1));
        assert_eq!(c.try_assign(3, 1), Some(2));
        assert_eq!(c.try_assign(3, 2), Some(3));
        assert_eq!(c.try_assign(3, 3), None); // exhausted
        assert_eq!(c.fallbacks, 1);
        assert_eq!(c.fast_released, 3);
        // Other registers unaffected.
        assert_eq!(c.try_assign(4, 4), Some(1));
    }

    #[test]
    fn same_region_reuses_its_color() {
        let mut c = Coloring::new(32, 4);
        assert_eq!(c.try_assign(7, 0), Some(1));
        assert_eq!(c.try_assign(7, 0), Some(1)); // coalesce, no new color
        assert_eq!(c.try_assign(7, 1), Some(2));
    }

    #[test]
    fn verification_rotates_vc_and_reclaims() {
        let mut c = Coloring::new(32, 4);
        // Paper Figure 17 rotation, offset by the reserved default slot:
        // region R0 takes color 1, R1 takes color 2.
        assert_eq!(c.try_assign(2, 0), Some(1));
        assert_eq!(c.try_assign(2, 1), Some(2));
        assert_eq!(c.verified_color(2), 0); // nothing verified: default slot
        c.on_region_verified(0);
        assert_eq!(c.verified_color(2), 1);
        // Now slot 0 is assignable (recovery reads slot 1).
        assert_eq!(c.try_assign(2, 2), Some(0));
        c.on_region_verified(1);
        assert_eq!(c.verified_color(2), 2);
        // Color 1 returned to AC and is reusable.
        assert_eq!(c.try_assign(2, 3), Some(1));
    }

    #[test]
    fn squash_returns_colors_without_touching_vc() {
        let mut c = Coloring::new(32, 4);
        assert_eq!(c.try_assign(5, 0), Some(1));
        c.on_region_verified(0);
        assert_eq!(c.verified_color(5), 1);
        assert_eq!(c.try_assign(5, 1), Some(0));
        assert_eq!(c.try_assign(5, 2), Some(2));
        c.on_squash(1);
        assert_eq!(c.verified_color(5), 1); // unchanged
                                            // Colors 0 and 2 are free again.
        assert_eq!(c.try_assign(5, 3), Some(0));
        assert_eq!(c.try_assign(5, 4), Some(2));
    }

    #[test]
    fn unverified_checkpoint_never_lands_in_the_recovery_slot() {
        // Regression: a corrupted first checkpoint must not occupy slot 0
        // (what recovery reads while VC is empty) — squash returns the
        // color but cannot erase the slot's data.
        let mut c = Coloring::new(32, 2);
        let got = c.try_assign(6, 0).expect("one usable color");
        assert_ne!(got, c.verified_color(6));
        // With a single color the fast path must refuse entirely.
        let mut c1 = Coloring::new(32, 1);
        assert_eq!(c1.try_assign(6, 0), None);
        assert_eq!(c1.fallbacks, 1);
    }

    #[test]
    fn preverified_params_pin_color_zero() {
        let mut c = Coloring::new(32, 4);
        c.preverify(9);
        assert_eq!(c.verified_color(9), 0);
        // Color 0 is not handed out again until displaced.
        assert_eq!(c.try_assign(9, 0), Some(1));
        c.on_region_verified(0);
        assert_eq!(c.verified_color(9), 1);
        // Now color 0 is back in the pool.
        assert_eq!(c.try_assign(9, 1), Some(0));
    }

    #[test]
    #[should_panic(expected = "1..=8 colors")]
    fn rejects_zero_colors() {
        let _ = Coloring::new(32, 0);
    }
}
