//! Recovery-path edge cases: strikes landing at the nastiest moments —
//! while a store is stalled on a full SB, exactly at region boundaries, in
//! rapid succession, and immediately before verification instants. Every
//! case must end bit-identical to the fault-free run.

use turnpike_ir::{BinOp, CmpOp, DataSegment};
use turnpike_isa::{MOperand, MachAddr, MachInst, MachProgram, PhysReg, RecoveryBlock, RegionId};
use turnpike_sim::{Core, Fault, FaultKind, FaultPlan, SimConfig};

fn r(i: u8) -> PhysReg {
    PhysReg::new(i).unwrap()
}

/// A store-dense region-structured loop that keeps the 4-entry SB full
/// under Turnstile (no fast release), maximizing stall windows.
fn dense_program(iters: i64) -> MachProgram {
    let insts = vec![
        MachInst::Mov {
            dst: r(1),
            src: MOperand::Imm(0),
        },
        // loop:
        MachInst::RegionBoundary { id: RegionId(1) },
        MachInst::Bin {
            op: BinOp::Shl,
            dst: r(2),
            lhs: r(1),
            rhs: MOperand::Imm(3),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(2),
            lhs: r(2),
            rhs: MOperand::Reg(r(0)),
        },
        MachInst::Store {
            src: MOperand::Reg(r(1)),
            addr: MachAddr::RegOffset(r(2), 0),
        },
        MachInst::Store {
            src: MOperand::Reg(r(2)),
            addr: MachAddr::RegOffset(r(2), 512),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: MOperand::Imm(1),
        },
        MachInst::Ckpt { reg: r(1) },
        MachInst::Cmp {
            op: CmpOp::Lt,
            dst: r(3),
            lhs: r(1),
            rhs: MOperand::Imm(iters),
        },
        MachInst::BranchNz {
            cond: r(3),
            target: 1,
        },
        MachInst::Ret {
            value: Some(MOperand::Reg(r(1))),
        },
    ];
    let mut p = MachProgram::from_insts("dense", insts, DataSegment::zeroed(0x1000, 200));
    p.reg_init = vec![(r(0), 0x1000)];
    let load = |reg| MachInst::Load {
        dst: reg,
        addr: MachAddr::CkptSlot(reg),
    };
    p.recovery.insert(
        RegionId(0),
        RecoveryBlock {
            insts: vec![load(r(0))],
        },
    );
    p.recovery.insert(
        RegionId(1),
        RecoveryBlock {
            insts: vec![load(r(0)), load(r(1))],
        },
    );
    p
}

fn check_plan(cfg: SimConfig, plan: FaultPlan) {
    let p = dense_program(12);
    let golden = Core::new(&p, cfg.clone()).run().unwrap();
    let run = Core::new(&p, cfg).run_with_faults(&plan).unwrap();
    assert_eq!(run.ret, golden.ret, "{plan:?}");
    assert_eq!(run.memory, golden.memory, "{plan:?}");
}

#[test]
fn strike_during_sb_stall_window() {
    // Turnstile with a long WCDL: stores stall on a full SB constantly.
    // Sweep strikes across the whole run so many land inside stall waits.
    let p = dense_program(12);
    let golden = Core::new(&p, SimConfig::turnstile(4, 40)).run().unwrap();
    let horizon = golden.stats.cycles;
    for k in 1..24 {
        let cycle = horizon * k / 24;
        let plan = FaultPlan::new(vec![Fault {
            strike_cycle: cycle,
            detect_latency: 1 + (k % 40),
            kind: FaultKind::RegisterParity {
                reg: (k % 4) as u8,
                bit: (k % 64) as u8,
            },
        }]);
        check_plan(SimConfig::turnstile(4, 40), plan);
    }
}

#[test]
fn strike_sweep_on_turnpike() {
    let p = dense_program(12);
    let golden = Core::new(&p, SimConfig::turnpike(4, 10)).run().unwrap();
    let horizon = golden.stats.cycles;
    for k in 1..24 {
        let cycle = horizon * k / 24;
        let plan = FaultPlan::new(vec![Fault {
            strike_cycle: cycle,
            detect_latency: 1 + (k % 10),
            kind: if k % 2 == 0 {
                FaultKind::Datapath {
                    bit: (k % 64) as u8,
                }
            } else {
                FaultKind::RegisterParity {
                    reg: (k % 6) as u8,
                    bit: (k % 64) as u8,
                }
            },
        }]);
        check_plan(SimConfig::turnpike(4, 10), plan);
    }
}

#[test]
fn back_to_back_strikes() {
    // Second strike lands inside the first recovery's re-execution.
    for gap in [1u64, 3, 7, 15, 30] {
        let plan = FaultPlan::new(vec![
            Fault {
                strike_cycle: 20,
                detect_latency: 5,
                kind: FaultKind::RegisterParity { reg: 1, bit: 9 },
            },
            Fault {
                strike_cycle: 25 + gap,
                detect_latency: 4,
                kind: FaultKind::Datapath { bit: 33 },
            },
        ]);
        check_plan(SimConfig::turnpike(4, 10), plan);
    }
}

#[test]
fn strike_exactly_at_verification_instants() {
    // Discover region end cycles from a traced clean run, then strike one
    // cycle before, at, and after each verification instant.
    let p = dense_program(8);
    let (golden, trace) = Core::new(&p, SimConfig::turnpike(4, 10))
        .run_traced(&FaultPlan::none(), 100_000)
        .unwrap();
    let verify_cycles: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            turnpike_sim::TraceEvent::RegionVerified { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .take(6)
        .collect();
    assert!(!verify_cycles.is_empty());
    for v in verify_cycles {
        for delta in [-1i64, 0, 1] {
            let cycle = v.saturating_add_signed(delta).max(1);
            if cycle >= golden.stats.cycles {
                continue;
            }
            let plan = FaultPlan::new(vec![Fault {
                strike_cycle: cycle,
                detect_latency: 10,
                kind: FaultKind::RegisterParity { reg: 1, bit: 1 },
            }]);
            let run = Core::new(&p, SimConfig::turnpike(4, 10))
                .run_with_faults(&plan)
                .unwrap();
            assert_eq!(run.ret, golden.ret, "strike at {cycle}");
            assert_eq!(run.memory, golden.memory, "strike at {cycle}");
        }
    }
}

#[test]
fn post_completion_strikes_are_harmless() {
    let p = dense_program(6);
    let golden = Core::new(&p, SimConfig::turnpike(4, 10)).run().unwrap();
    let plan = FaultPlan::new(vec![Fault {
        strike_cycle: golden.stats.cycles + 1000,
        detect_latency: 5,
        kind: FaultKind::RegisterParity { reg: 1, bit: 1 },
    }]);
    let run = Core::new(&p, SimConfig::turnpike(4, 10))
        .run_with_faults(&plan)
        .unwrap();
    assert_eq!(run.ret, golden.ret);
    assert_eq!(run.memory, golden.memory);
    assert_eq!(run.stats.recoveries, 0);
}
