//! Scheme definitions: the paper's design points as configuration bundles.
//!
//! The scheme→configuration mapping and the evaluation sweep tables live in
//! [`crate::preset`]; the methods here are thin delegations kept for API
//! stability.

use turnpike_compiler::CompilerConfig;
use turnpike_sim::SimConfig;

/// One point in the paper's design space. The ordering of the middle
/// variants follows the optimization ladder of Figure 21: each rung adds one
/// compiler or hardware technique on top of the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unprotected core, plain compiler (the normalization baseline).
    Baseline,
    /// Turnstile: regions + eager checkpointing + gated SB (state of the
    /// art the paper improves on).
    Turnstile,
    /// Turnstile + WAR-free fast release of regular stores (compact CLQ).
    WarFree,
    /// + hardware coloring for checkpoint stores ("Fast Release").
    FastRelease,
    /// + optimal checkpoint pruning.
    FastReleasePrune,
    /// + checkpoint sinking (LICM).
    FastReleasePruneLicm,
    /// + checkpoint-aware instruction scheduling.
    FastReleasePruneLicmSched,
    /// + store-aware register allocation ("RA trick").
    FastReleasePruneLicmSchedRa,
    /// Full Turnpike: everything above + loop induction variable merging.
    Turnpike,
    /// Turnpike with per-region adaptive protection: the vulnerability
    /// pass leaves low-scoring regions unprotected, trading their (already
    /// negligible) coverage contribution for uniform-beating runtime.
    Adaptive,
}

impl Scheme {
    /// The Figure-21 ladder, in presentation order (baseline excluded).
    /// Derived from [`crate::preset::LADDER`], the one authoritative rung
    /// table.
    pub const LADDER: [Scheme; 9] = crate::preset::ladder_schemes();

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Turnstile => "Turnstile",
            Scheme::WarFree => "WAR-free Checking",
            Scheme::FastRelease => "Fast Release (WAR-free + HW Coloring)",
            Scheme::FastReleasePrune => "Fast Release + Pruning",
            Scheme::FastReleasePruneLicm => "Fast Release + Pruning + LICM",
            Scheme::FastReleasePruneLicmSched => "Fast Release + Pruning + LICM + Inst Sched",
            Scheme::FastReleasePruneLicmSchedRa => {
                "Fast Release + Pruning + LICM + Inst Sched + RA Trick"
            }
            Scheme::Turnpike => "Turnpike",
            Scheme::Adaptive => "Turnpike + Adaptive Region Protection",
        }
    }

    /// Compiler configuration for this scheme on an `sb_size`-entry SB
    /// (delegates to [`crate::preset::compiler_config_for`]).
    pub fn compiler_config(self, sb_size: u32) -> CompilerConfig {
        crate::preset::compiler_config_for(self, sb_size)
    }

    /// Simulator configuration for this scheme (delegates to
    /// [`crate::preset::sim_config_for`]).
    pub fn sim_config(self, sb_size: u32, wcdl: u64) -> SimConfig {
        crate::preset::sim_config_for(self, sb_size, wcdl)
    }

    /// Whether the scheme offers recovery at all.
    pub fn is_resilient(self) -> bool {
        self != Scheme::Baseline
    }

    /// Stable kebab-case name for CLI flags and file names.
    pub fn cli_name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Turnstile => "turnstile",
            Scheme::WarFree => "war-free",
            Scheme::FastRelease => "fast-release",
            Scheme::FastReleasePrune => "fast-release-prune",
            Scheme::FastReleasePruneLicm => "fast-release-prune-licm",
            Scheme::FastReleasePruneLicmSched => "fast-release-prune-licm-sched",
            Scheme::FastReleasePruneLicmSchedRa => "fast-release-prune-licm-sched-ra",
            Scheme::Turnpike => "turnpike",
            Scheme::Adaptive => "adaptive",
        }
    }

    /// Parse a [`cli_name`](Self::cli_name) back into a scheme.
    pub fn parse(name: &str) -> Option<Scheme> {
        [Scheme::Baseline]
            .iter()
            .chain(Scheme::LADDER.iter())
            .copied()
            .find(|s| s.cli_name() == name)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_sim::ClqKind;

    #[test]
    fn ladder_is_monotone_in_features() {
        // Each rung enables at least as many compiler features as the prior.
        let count = |c: &CompilerConfig| {
            [c.prune, c.licm, c.sched, c.store_aware_ra, c.livm]
                .iter()
                .filter(|&&x| x)
                .count()
        };
        let mut prev = 0;
        for s in Scheme::LADDER {
            let n = count(&s.compiler_config(4));
            assert!(n >= prev, "{s}: {n} < {prev}");
            prev = n;
        }
        assert_eq!(count(&Scheme::Turnpike.compiler_config(4)), 5);
    }

    #[test]
    fn hardware_toggles_match_paper() {
        let ts = Scheme::Turnstile.sim_config(4, 10);
        assert!(ts.resilient && !ts.war_free && !ts.coloring);
        let wf = Scheme::WarFree.sim_config(4, 10);
        assert!(wf.war_free && !wf.coloring);
        assert_eq!(wf.clq, ClqKind::Compact(2));
        let fr = Scheme::FastRelease.sim_config(4, 10);
        assert!(fr.war_free && fr.coloring);
        let b = Scheme::Baseline.sim_config(4, 10);
        assert!(!b.resilient);
        assert!(!Scheme::Baseline.is_resilient());
        assert!(Scheme::Turnpike.is_resilient());
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in Scheme::LADDER.iter().chain([&Scheme::Baseline]) {
            assert!(seen.insert(s.label()), "duplicate label {s}");
        }
        assert_eq!(Scheme::Turnpike.to_string(), "Turnpike");
    }

    #[test]
    fn cli_names_round_trip() {
        for s in Scheme::LADDER.iter().chain([&Scheme::Baseline]) {
            assert_eq!(Scheme::parse(s.cli_name()), Some(*s), "{s}");
            assert!(
                s.cli_name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{s}"
            );
        }
        assert_eq!(Scheme::parse("no-such-scheme"), None);
    }

    #[test]
    fn sb_size_propagates() {
        for sb in [4u32, 8, 40] {
            assert_eq!(Scheme::Turnstile.compiler_config(sb).sb_size, sb);
            assert_eq!(Scheme::Turnpike.sim_config(sb, 10).sb_size, sb);
        }
    }
}
