//! The pass manager: an explicit, declarative compile pipeline.
//!
//! The pipeline of [`crate::compile`] is materialized from a
//! [`CompilerConfig`] as a list of [`Pass`] objects filtered out of the
//! static `PIPELINE` table — pass order and enabling conditions are
//! *data*, not control flow scattered through a monolithic function.
//! [`PassManager::run`] drives the list over a program and, around every
//! pass:
//!
//! * times it and snapshots its [`MetricSet`] contribution into a
//!   [`PassRecord`] (per-pass attribution; the records' metrics sum to the
//!   whole-compile registry);
//! * verifies IR structural invariants in debug/test builds
//!   ([`turnpike_ir::Function::verify`]), failing the compile with
//!   [`CompileError::Verify`] on a defect;
//! * optionally checks interpreter equivalence (golden run before vs after
//!   the pass, spill slots masked) when enabled via
//!   [`PassManager::with_equivalence_checks`];
//! * notifies registered [`PassObserver`]s — per-pass IR snapshots
//!   ([`crate::compile_with_snapshots`]) are just one observer.
//!
//! Passes communicate through [`PassCx`]: the shared metrics registry the
//! whole stack reports into (see `turnpike-metrics`) plus the pipeline's
//! cross-pass state (prune recipes consumed by codegen).

use std::time::Instant;

use crate::codegen::codegen_with_modes;
use crate::config::{CompilerConfig, PassStats, ProtectionPolicy};
use crate::pipeline::{CompileError, CompileOutput};
use crate::prune::PruneRecipes;
use crate::vulnerability::RegionModes;
use turnpike_ir::{interp, Program};
use turnpike_metrics::{Counter, MetricSet};

/// Shared state threaded through every pass of one compilation.
pub struct PassCx<'a> {
    /// The configuration the pipeline was materialized from.
    pub config: &'a CompilerConfig,
    /// The compile-wide metrics registry; passes record their statistics
    /// here and the manager attributes per-pass deltas automatically.
    pub metrics: &'a mut MetricSet,
    /// Checkpoint reconstruction recipes produced by pruning and consumed
    /// by recovery-block codegen.
    pub recipes: &'a mut PruneRecipes,
    /// Per-region protection modes produced by the vulnerability pass and
    /// attached to the machine program by codegen (empty under the default
    /// uniform policy).
    pub modes: &'a mut RegionModes,
}

/// One stage of the compile pipeline.
///
/// Implementations are thin wrappers over the pass functions in their
/// respective modules; they exist so the manager can time, verify, observe,
/// and meter every stage uniformly.
pub trait Pass {
    /// Stable stage name (used by snapshots, records, and error messages).
    fn name(&self) -> &'static str;

    /// Transform `prog`, recording statistics into `cx.metrics`.
    ///
    /// # Errors
    ///
    /// Pass-specific failures (allocation pressure, region overflow, ...).
    fn run(&self, prog: &mut Program, cx: &mut PassCx<'_>) -> Result<(), CompileError>;

    /// Whether the pass only measures the program without transforming it.
    /// Analysis passes are skipped by snapshot observers and equivalence
    /// checks.
    fn is_analysis(&self) -> bool {
        false
    }
}

/// What the manager recorded about one executed pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Wall-clock time the pass took, in nanoseconds.
    pub nanos: u128,
    /// The pass's own metrics contribution (delta over the registry state
    /// when the pass started). Summing these over all records of a compile
    /// reproduces the whole-compile registry.
    pub metrics: MetricSet,
}

/// Hook into pass execution; registered via [`PassManager::with_observer`].
pub trait PassObserver {
    /// Called before a pass runs.
    fn before_pass(&mut self, _pass: &dyn Pass, _prog: &Program) {}
    /// Called after a pass ran (and passed verification).
    fn after_pass(&mut self, _pass: &dyn Pass, _prog: &Program, _record: &PassRecord) {}
}

/// One row of the declarative pipeline table.
struct PassSpec {
    /// Whether the pass is part of the pipeline under this configuration.
    enabled: fn(&CompilerConfig) -> bool,
    /// Constructor for the pass object.
    build: fn() -> Box<dyn Pass>,
}

/// The compile pipeline as data (paper §4, Figure 7): every stage in order,
/// with the configuration predicate that enables it. [`PassManager::for_config`]
/// materializes its pass list by filtering this table.
const PIPELINE: &[PassSpec] = &[
    PassSpec {
        enabled: |_| true,
        build: || Box::new(crate::legalize::LegalizePass),
    },
    PassSpec {
        enabled: |c| c.livm,
        build: || Box::new(crate::livm::LivmPass),
    },
    PassSpec {
        enabled: |_| true,
        build: || Box::new(crate::regalloc::RegallocPass),
    },
    PassSpec {
        enabled: |_| true,
        build: || Box::new(crate::codegen::BaselineSizePass),
    },
    PassSpec {
        enabled: |c| c.resilient,
        build: || Box::new(crate::partition::PartitionPass),
    },
    PassSpec {
        enabled: |c| c.resilient,
        build: || Box::new(crate::checkpoint::CheckpointFixpointPass),
    },
    PassSpec {
        enabled: |c| c.resilient && c.prune,
        build: || Box::new(crate::prune::PrunePass),
    },
    PassSpec {
        enabled: |c| c.resilient && c.licm,
        build: || Box::new(crate::licm::LicmPass),
    },
    PassSpec {
        enabled: |c| c.resilient && c.sched,
        build: || Box::new(crate::sched::SchedPass),
    },
    // Last: scores the fully-optimized regions, so every transform above
    // is reflected in the vulnerability inputs.
    PassSpec {
        enabled: |c| c.resilient && c.policy != ProtectionPolicy::Uniform,
        build: || Box::new(crate::vulnerability::VulnerabilityPass),
    },
];

/// Drives a configured pass list over programs. [`crate::compile`] is a
/// thin wrapper over `PassManager::for_config(config).run(program)`.
pub struct PassManager {
    config: CompilerConfig,
    passes: Vec<Box<dyn Pass>>,
    observers: Vec<Box<dyn PassObserver>>,
    verify_ir: bool,
    check_equivalence: bool,
}

impl PassManager {
    /// Materialize the pipeline for `config` from the `PIPELINE` table.
    ///
    /// IR verification after every pass is on in debug/test builds and off
    /// in release builds (override with [`PassManager::with_ir_verification`]);
    /// interpreter-equivalence checking is always opt-in.
    pub fn for_config(config: &CompilerConfig) -> Self {
        let passes = PIPELINE
            .iter()
            .filter(|spec| (spec.enabled)(config))
            .map(|spec| (spec.build)())
            .collect();
        PassManager {
            config: config.clone(),
            passes,
            observers: Vec::new(),
            verify_ir: cfg!(debug_assertions),
            check_equivalence: false,
        }
    }

    /// The names of the passes that will run, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Register an observer (builder style).
    pub fn with_observer(mut self, observer: Box<dyn PassObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Force IR verification after every pass on or off.
    pub fn with_ir_verification(mut self, on: bool) -> Self {
        self.verify_ir = on;
        self
    }

    /// Check interpreter equivalence across every transforming pass: the
    /// golden (return value, data memory) of the program before the pass
    /// must be reproduced after it, with spill slots masked. Expensive —
    /// meant for tests and debugging sessions, not the hot path.
    pub fn with_equivalence_checks(mut self, on: bool) -> Self {
        self.check_equivalence = on;
        self
    }

    /// Run the pipeline over `program`: every pass, then lowering to
    /// machine code with the pruning recipes collected along the way.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; verification and equivalence failures name the
    /// offending pass.
    pub fn run(&mut self, program: &Program) -> Result<CompileOutput, CompileError> {
        let mut prog = program.clone();
        let mut metrics = MetricSet::new();
        let mut recipes = PruneRecipes::default();
        let mut modes = RegionModes::default();
        let mut records: Vec<PassRecord> = Vec::with_capacity(self.passes.len() + 1);

        for pass in &self.passes {
            for obs in &mut self.observers {
                obs.before_pass(pass.as_ref(), &prog);
            }
            let golden_before = if self.check_equivalence && !pass.is_analysis() {
                interp::golden(&prog).ok()
            } else {
                None
            };
            let before = metrics.clone();
            let t0 = Instant::now();
            {
                let mut cx = PassCx {
                    config: &self.config,
                    metrics: &mut metrics,
                    recipes: &mut recipes,
                    modes: &mut modes,
                };
                pass.run(&mut prog, &mut cx)?;
            }
            let nanos = t0.elapsed().as_nanos();
            if self.verify_ir {
                prog.func.verify().map_err(|error| CompileError::Verify {
                    pass: pass.name(),
                    error,
                })?;
            }
            if let Some(golden) = golden_before {
                if !Self::still_equivalent(&golden, &prog) {
                    return Err(CompileError::NotEquivalent { pass: pass.name() });
                }
            }
            let record = PassRecord {
                name: pass.name(),
                nanos,
                metrics: metrics.delta_since(&before),
            };
            for obs in &mut self.observers {
                obs.after_pass(pass.as_ref(), &prog, &record);
            }
            records.push(record);
        }

        // Lowering: not an IR→IR pass, but timed and metered like one so
        // the records cover the whole compile.
        let before = metrics.clone();
        let t0 = Instant::now();
        if self.config.resilient {
            metrics.add(Counter::Boundaries, prog.func.boundary_count() as u64);
        }
        let machine = codegen_with_modes(&prog, &recipes, &modes)?;
        metrics.add(Counter::FinalInsts, machine.insts.len() as u64);
        records.push(PassRecord {
            name: "codegen",
            nanos: t0.elapsed().as_nanos(),
            metrics: metrics.delta_since(&before),
        });

        let stats = PassStats::from_metrics(&metrics);
        Ok(CompileOutput {
            program: machine,
            stats,
            metrics,
            passes: records,
        })
    }

    /// Golden equivalence modulo spill slots: the IR interpreter's return
    /// value and sub-`SPILL_BASE` data memory must match the pre-pass run.
    fn still_equivalent(
        golden: &(Option<i64>, std::collections::BTreeMap<u64, i64>),
        prog: &Program,
    ) -> bool {
        let Ok(after) = interp::golden(prog) else {
            return false;
        };
        let data_only = |m: &std::collections::BTreeMap<u64, i64>| {
            m.iter()
                .filter(|(a, _)| **a < crate::regalloc::SPILL_BASE)
                .map(|(a, v)| (*a, *v))
                .collect::<std::collections::BTreeMap<u64, i64>>()
        };
        golden.0 == after.0 && data_only(&golden.1) == data_only(&after.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{DataSegment, FunctionBuilder, Operand};

    fn sample() -> Program {
        let mut b = FunctionBuilder::new("pm");
        let x = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(x, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.store_abs(x, 0x1000);
        b.add(x, x, 1i64);
        b.cmp_lt(c, x, 8i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(x)));
        Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 1))
    }

    #[test]
    fn pipeline_materializes_declaratively() {
        let full = PassManager::for_config(&CompilerConfig::turnpike(4));
        assert_eq!(
            full.pass_names(),
            vec![
                "legalize",
                "livm+dce",
                "regalloc",
                "baseline-size",
                "partition",
                "checkpoint",
                "prune",
                "licm",
                "sched"
            ]
        );
        let turnstile = PassManager::for_config(&CompilerConfig::turnstile(4));
        assert_eq!(
            turnstile.pass_names(),
            vec![
                "legalize",
                "regalloc",
                "baseline-size",
                "partition",
                "checkpoint"
            ]
        );
        let baseline = PassManager::for_config(&CompilerConfig::baseline());
        assert_eq!(
            baseline.pass_names(),
            vec!["legalize", "regalloc", "baseline-size"]
        );
    }

    #[test]
    fn records_cover_every_pass_plus_codegen() {
        let cfg = CompilerConfig::turnpike(4);
        let mut pm = PassManager::for_config(&cfg);
        let out = pm.run(&sample()).unwrap();
        let names: Vec<&str> = out.passes.iter().map(|r| r.name).collect();
        let mut expected = pm.pass_names();
        expected.push("codegen");
        assert_eq!(names, expected);
    }

    #[test]
    fn per_pass_metrics_sum_to_totals() {
        let cfg = CompilerConfig::turnpike(4);
        let out = PassManager::for_config(&cfg).run(&sample()).unwrap();
        let mut summed = MetricSet::new();
        for rec in &out.passes {
            summed.merge(&rec.metrics);
        }
        assert_eq!(summed, out.metrics);
        assert_eq!(PassStats::from_metrics(&summed), out.stats);
    }

    #[test]
    fn equivalence_checks_pass_on_sound_pipeline() {
        for cfg in [
            CompilerConfig::baseline(),
            CompilerConfig::turnstile(4),
            CompilerConfig::turnpike(4),
        ] {
            let out = PassManager::for_config(&cfg)
                .with_equivalence_checks(true)
                .run(&sample());
            assert!(out.is_ok(), "{cfg:?}: {:?}", out.err());
        }
    }

    #[test]
    fn observers_see_every_transforming_pass() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Recorder(Rc<RefCell<Vec<(&'static str, bool)>>>);
        impl PassObserver for Recorder {
            fn after_pass(&mut self, pass: &dyn Pass, _prog: &Program, rec: &PassRecord) {
                assert_eq!(pass.name(), rec.name);
                self.0.borrow_mut().push((pass.name(), pass.is_analysis()));
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        PassManager::for_config(&CompilerConfig::turnstile(4))
            .with_observer(Box::new(Recorder(Rc::clone(&seen))))
            .run(&sample())
            .unwrap();
        let seen = seen.borrow();
        assert!(seen.contains(&("legalize", false)));
        assert!(seen.contains(&("baseline-size", true)));
        assert!(seen.contains(&("checkpoint", false)));
    }

    #[test]
    fn verification_catches_malformed_output() {
        // A pass that corrupts the CFG must fail the compile in a
        // verifying manager, attributed to the pass by name.
        struct Corruptor;
        impl Pass for Corruptor {
            fn name(&self) -> &'static str {
                "corruptor"
            }
            fn run(&self, prog: &mut Program, _cx: &mut PassCx<'_>) -> Result<(), CompileError> {
                use turnpike_ir::{BlockId, Terminator};
                prog.func.blocks[0].term = Terminator::Jump(BlockId(999));
                Ok(())
            }
        }
        let mut pm =
            PassManager::for_config(&CompilerConfig::baseline()).with_ir_verification(true);
        pm.passes.insert(0, Box::new(Corruptor));
        let err = pm.run(&sample()).unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::Verify {
                    pass: "corruptor",
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
