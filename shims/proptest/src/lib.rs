//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This shim keeps the same surface compiling and
//! running: `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` with `prop_map`/`boxed`, `Just`, `any`, integer-range and
//! tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, and simple `[class]{m,n}` string patterns.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` randomized
//! cases from a seed derived deterministically from the test name, so
//! failures are reproducible run-over-run. There is no shrinking — a
//! failing case reports its inputs via the normal `assert!` panic message
//! (the generated values are part of the test's `Debug` output where the
//! assertion includes them).

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary state.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Per-test, per-case seeding: FNV-1a over the test name, mixed with
    /// the case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// One uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// A `&str` literal acts as a generation pattern. Supported grammar (the
/// subset this workspace's tests use): a sequence of atoms, where an atom
/// is a literal character, an escape (`\n`, `\t`, `\\`), or a character
/// class `[...]` of literals/ranges; any atom may carry a `{min,max}`
/// repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into the set of characters it can produce.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                let c = unescape(chars.get(i + 1).copied(), pattern);
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {min,max} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported repeat {body:?} in {pattern:?}"));
            i = close + 1;
            (
                lo.trim().parse::<usize>().expect("repeat lower bound"),
                hi.trim().parse::<usize>().expect("repeat upper bound"),
            )
        } else {
            (1, 1)
        };
        let n = min + rng.below(max - min + 1);
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
    }
    out
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('\\') => '\\',
        Some(']') => ']',
        Some('[') => '[',
        other => panic!("unsupported escape {other:?} in pattern {pattern:?}"),
    }
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = if body[i] == '\\' {
            let c = unescape(body.get(i + 1).copied(), pattern);
            i += 2;
            c
        } else {
            let c = body[i];
            i += 1;
            c
        };
        if body.get(i) == Some(&'-') && i + 1 < body.len() {
            let hi = body[i + 1];
            i += 2;
            for c in lo..=hi {
                set.push(c);
            }
        } else {
            set.push(lo);
        }
    }
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    set
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// `Vec` of `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` of *up to* `size.max` elements (duplicates collapse, as
    /// with the real crate the minimum is best-effort for small domains).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            let mut set = BTreeSet::new();
            // Best-effort fill: bounded attempts so tiny domains terminate.
            let mut attempts = 0;
            while set.len() < n && attempts < n * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select(items)
    }

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

/// Path-compatible alias module: `prop::collection::vec(...)` etc.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// Runner configuration
// ---------------------------------------------------------------------------

/// Per-test runner knobs (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property (no shrinking in this shim; delegates to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr);
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

// Keep `BTreeSet` referenced so the top-level import mirrors usage in
// `collection` (and silences an unused-import lint under feature churn).
#[allow(unused)]
fn _btree_marker(_: BTreeSet<u8>) {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u8..32, pair in (0u32..10, -5i64..5)) {
            prop_assert!(x < 32);
            prop_assert!(pair.0 < 10);
            prop_assert!((-5..5).contains(&pair.1));
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(0u8), (1u8..4).prop_map(|x| x * 10)]) {
            prop_assert!(v == 0 || (10..40).contains(&v));
        }

        #[test]
        fn string_patterns_generate(text in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&text.len()));
            prop_assert!(text.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn pattern_with_escapes_and_space_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..50 {
            let s = Strategy::generate(&"[ -~\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn select_is_uniformish() {
        let mut rng = TestRng::new(9);
        let s = prop::sample::select(vec![1, 2, 3]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn determinism_per_test_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
