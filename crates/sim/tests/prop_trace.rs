//! Property tests on the trace event stream: per-kind cycle monotonicity
//! and the quarantine/release/squash accounting identity, across random
//! hardware points and fault plans.

use proptest::prelude::*;
use turnpike_ir::{BinOp, CmpOp, DataSegment};
use turnpike_isa::{MOperand, MachAddr, MachInst, MachProgram, PhysReg, RecoveryBlock, RegionId};
use turnpike_sim::{Core, Fault, FaultKind, FaultPlan, SimConfig, TraceEvent};

fn r(i: u8) -> PhysReg {
    PhysReg::new(i).unwrap()
}

/// The trace_lifecycle store loop: six iterations, one region + one store +
/// one checkpoint each, with recovery metadata.
fn program() -> MachProgram {
    let insts = vec![
        MachInst::Mov {
            dst: r(1),
            src: MOperand::Imm(0),
        },
        MachInst::RegionBoundary { id: RegionId(1) },
        MachInst::Bin {
            op: BinOp::Shl,
            dst: r(2),
            lhs: r(1),
            rhs: MOperand::Imm(3),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(2),
            lhs: r(2),
            rhs: MOperand::Reg(r(0)),
        },
        MachInst::Store {
            src: MOperand::Reg(r(1)),
            addr: MachAddr::RegOffset(r(2), 0),
        },
        MachInst::Bin {
            op: BinOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: MOperand::Imm(1),
        },
        MachInst::Ckpt { reg: r(1) },
        MachInst::Cmp {
            op: CmpOp::Lt,
            dst: r(3),
            lhs: r(1),
            rhs: MOperand::Imm(6),
        },
        MachInst::BranchNz {
            cond: r(3),
            target: 1,
        },
        MachInst::Ret {
            value: Some(MOperand::Reg(r(1))),
        },
    ];
    let mut p = MachProgram::from_insts("prop-trace", insts, DataSegment::zeroed(0x1000, 6));
    p.reg_init = vec![(r(0), 0x1000)];
    let load = |reg| MachInst::Load {
        dst: reg,
        addr: MachAddr::CkptSlot(reg),
    };
    p.recovery.insert(
        RegionId(0),
        RecoveryBlock {
            insts: vec![load(r(0))],
        },
    );
    p.recovery.insert(
        RegionId(1),
        RecoveryBlock {
            insts: vec![load(r(0)), load(r(1))],
        },
    );
    p
}

proptest! {
    /// Within each event kind the cycle stamps are non-decreasing (the
    /// event-skip simulator interleaves kinds, so only per-kind clocks are
    /// monotone), and every quarantined store is either released or
    /// squashed by a recovery: releases = quarantines − coalesces − squash
    /// discards, exactly.
    #[test]
    fn stream_is_monotone_and_conserves_stores(
        turnpike_hw in any::<bool>(),
        sb_size in 2u32..8,
        wcdl in 5u64..40,
        strike_cycle in 1u64..200,
        detect_latency in 0u64..5,
        parity in any::<bool>(),
    ) {
        let p = program();
        let sc = if turnpike_hw {
            SimConfig::turnpike(sb_size, wcdl)
        } else {
            SimConfig::turnstile(sb_size, wcdl)
        };
        let kind = if parity {
            FaultKind::RegisterParity { reg: 1, bit: 2 }
        } else {
            FaultKind::Datapath { bit: 21 }
        };
        let plan = FaultPlan::new(vec![Fault { strike_cycle, detect_latency, kind }]);
        let (out, trace) = Core::new(&p, sc).run_traced(&plan, 1 << 16).unwrap();
        prop_assert_eq!(out.ret, Some(6), "resilient run must recover");
        prop_assert_eq!(trace.dropped, 0, "cap must not truncate this run");
        let evs = trace.events();

        // Per-kind cycle monotonicity.
        let mut last: std::collections::HashMap<&'static str, u64> =
            std::collections::HashMap::new();
        for e in &evs {
            let prev = last.insert(e.kind(), e.cycle()).unwrap_or(0);
            prop_assert!(
                e.cycle() >= prev,
                "{} stream went back in time: {} -> {}", e.kind(), prev, e.cycle()
            );
        }

        // Store conservation: every Quarantined event is matched by an
        // SbRelease unless a recovery squashed it (or it coalesced into an
        // already-counted entry).
        let count = |f: fn(&TraceEvent) -> bool| evs.iter().filter(|e| f(e)).count() as u64;
        let q = count(|e| matches!(e, TraceEvent::Quarantined { .. }));
        let rel = count(|e| matches!(e, TraceEvent::SbRelease { .. }));
        let recoveries = count(|e| matches!(e, TraceEvent::Recovery { .. }));
        let s = &out.stats;
        prop_assert_eq!(q, s.quarantined);
        prop_assert_eq!(
            rel,
            s.quarantined - s.sb_coalesced - s.sb_discarded,
            "release count must equal quarantines minus coalesces and squashes"
        );
        if s.sb_discarded > 0 {
            prop_assert!(recoveries > 0, "only recovery discards SB entries");
        }
        // Detections precede recoveries one-for-one in this single-strike
        // plan, and a strike inside the run always produces both.
        prop_assert_eq!(recoveries, s.recoveries);
        if recoveries > 0 {
            prop_assert!(s.detections >= recoveries);
        }
    }

    /// Fault-free runs drain every quarantined store: no coalescing losses
    /// beyond the counter, no discards, and SB occupancy samples never
    /// exceed the configured capacity.
    #[test]
    fn fault_free_stream_releases_everything(
        turnpike_hw in any::<bool>(),
        sb_size in 2u32..8,
        wcdl in 5u64..40,
    ) {
        let p = program();
        let sc = if turnpike_hw {
            SimConfig::turnpike(sb_size, wcdl)
        } else {
            SimConfig::turnstile(sb_size, wcdl)
        };
        let (out, trace) = Core::new(&p, sc).run_traced(&FaultPlan::none(), 1 << 16).unwrap();
        prop_assert_eq!(out.ret, Some(6));
        let evs = trace.events();
        let q = evs.iter().filter(|e| matches!(e, TraceEvent::Quarantined { .. })).count() as u64;
        let rel = evs.iter().filter(|e| matches!(e, TraceEvent::SbRelease { .. })).count() as u64;
        prop_assert_eq!(out.stats.sb_discarded, 0);
        prop_assert_eq!(rel, q - out.stats.sb_coalesced);
        for e in &evs {
            if let TraceEvent::SbOccupancy { entries, .. } = e {
                prop_assert!(*entries <= sb_size, "occupancy over capacity");
            }
        }
    }
}
