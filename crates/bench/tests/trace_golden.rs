//! Golden trace diff: the JSONL event stream of the reference trace run
//! (bwaves, full Turnpike, smoke scale, the deterministic strike plan) must
//! stay byte-identical to `golden/trace_smoke.jsonl`. Regenerate after an
//! intentional schema or timing change with:
//!
//! ```sh
//! cargo run --release -p turnpike-bench --bin reproduce -- \
//!   trace bwaves --scheme turnpike --smoke --format jsonl \
//!   --out crates/bench/golden/trace_smoke.jsonl
//! ```

use turnpike_bench::{export_trace, find_kernel, TraceFormat};
use turnpike_resilience::{RunSpec, Scheme};
use turnpike_workloads::Scale;

#[test]
fn jsonl_trace_matches_golden() {
    let kernel = find_kernel("bwaves", Scale::Smoke).expect("bwaves in catalog");
    let spec = RunSpec::new(Scheme::Turnpike);
    let got = export_trace(&kernel, &spec, TraceFormat::Jsonl).expect("trace run");
    let golden = include_str!("../golden/trace_smoke.jsonl");
    // Compare line counts first for a readable failure before the byte diff.
    assert_eq!(
        got.lines().count(),
        golden.lines().count(),
        "trace event count drifted from golden/trace_smoke.jsonl"
    );
    assert_eq!(
        got, golden,
        "trace stream drifted; see module docs to regen"
    );
}
