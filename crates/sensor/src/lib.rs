//! Acoustic-sensor modeling for the Turnpike reproduction.
//!
//! Acoustic wave detectors perceive the sound wave a particle strike leaves
//! in silicon, so *every* strike is reported — the only question is how long
//! the wave needs to reach the nearest sensor. This crate models that
//! contract:
//!
//! * [`SensorGrid`] — detection latency as a function of sensor count, die
//!   area, and clock frequency (regenerates the paper's Figure 18), with the
//!   guarantee that any strike is detected within
//!   [`wcdl_cycles`](SensorGrid::wcdl_cycles);
//! * [`StrikeSampler`] — randomized particle-strike schedules (cycle +
//!   per-strike detection delay ≤ WCDL) for fault-injection campaigns.
//!
//! The mapping of strikes onto microarchitectural targets lives in
//! `turnpike-resilience`, which owns the simulator types.

pub mod grid;
pub mod sampler;

pub use grid::SensorGrid;
pub use sampler::{Strike, StrikeSampler};
