//! Optimal checkpoint pruning (paper §4.1.3, after Penny).
//!
//! A checkpoint can be removed when the value it would save is
//! *reconstructible at recovery time* from constants and from registers the
//! recovery block restores anyway. The recovery block of the affected region
//! then re-executes the defining instruction (its backward slice of depth
//! one) instead of loading the pruned slot.
//!
//! This implementation prunes block-local candidates, which is the common
//! case produced by eager checkpointing (the checkpoint sits right after the
//! definition, in the same block as the region boundaries it feeds):
//!
//! * the checkpointed register `r` may cross any number of boundaries
//!   *within its block* (each gets the reconstruction recipe), but must be
//!   dead at block exit so no out-of-block region depends on the slot;
//! * the defining instruction must be a pure `mov`/`bin`/`cmp`;
//! * each register operand must survive unredefined up to the last crossed
//!   boundary, be live at every crossed boundary (so the recovery restores
//!   it first), not itself be pruned at any of them, and not be the
//!   checkpointed register (its pre-definition value would be lost).
//!
//! Anything that fails these tests keeps its checkpoint — pruning is purely
//! an optimization and must never weaken recoverability.

use std::collections::HashMap;
use turnpike_ir::{BlockId, Cfg, Function, Inst, Liveness, Reg};

/// Reconstruction recipes keyed by *boundary id*: the region starting at that
/// boundary reconstructs each `(reg, defining-inst)` pair in its recovery
/// block instead of loading the register's checkpoint slot.
#[derive(Debug, Clone, Default)]
pub struct PruneRecipes {
    /// boundary id → ordered reconstruction list.
    pub by_boundary: HashMap<u32, Vec<(Reg, Inst)>>,
}

impl PruneRecipes {
    /// Total number of pruned checkpoints.
    pub fn len(&self) -> usize {
        self.by_boundary.values().map(Vec::len).sum()
    }

    /// Whether no checkpoint was pruned.
    pub fn is_empty(&self) -> bool {
        self.by_boundary.is_empty()
    }

    /// Registers pruned at a given boundary.
    pub fn pruned_at(&self, boundary: u32) -> impl Iterator<Item = Reg> + '_ {
        self.by_boundary
            .get(&boundary)
            .into_iter()
            .flatten()
            .map(|(r, _)| *r)
    }
}

/// Run pruning; removes prunable checkpoints in place and returns the
/// recipes for recovery-block generation.
pub fn prune_checkpoints(f: &mut Function) -> PruneRecipes {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let mut recipes = PruneRecipes::default();
    // Operands already referenced by an accepted recipe, per boundary:
    // those registers must not be pruned later at the same boundary.
    let mut recipe_operands: HashMap<u32, Vec<Reg>> = HashMap::new();

    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        let insts = f.blocks[bi].insts.clone();
        for i in 0..insts.len() {
            // Pattern: def at i, its eager checkpoint at i+1.
            let Some(r) = insts[i].def() else { continue };
            let Some(Inst::Ckpt { reg }) = insts.get(i + 1).copied() else {
                continue;
            };
            if reg != r {
                continue;
            }
            let def = insts[i];
            if !matches!(def, Inst::Mov { .. } | Inst::Bin { .. } | Inst::Cmp { .. }) {
                continue;
            }
            // The value must not escape the block through its exit.
            if live.live_out(b).contains(r) {
                continue;
            }
            // Boundaries this value crosses: every boundary after the
            // checkpoint up to r's next redefinition (or block end).
            let next_redef = (i + 2..insts.len())
                .find(|&k| insts[k].def() == Some(r))
                .unwrap_or(insts.len());
            // Only boundaries where the value is live matter: dead-in
            // regions never restore r, so they need no recipe.
            let crossed: Vec<(usize, u32)> = (i + 2..next_redef)
                .filter_map(|k| match insts[k] {
                    Inst::RegionBoundary { id } if live.live_before(f, b, k).contains(r) => {
                        Some((k, id))
                    }
                    _ => None,
                })
                .collect();
            if crossed.is_empty() {
                continue;
            }
            let last_j = crossed.last().expect("nonempty").0;
            // Operand checks, against every crossed boundary.
            let ops: Vec<Reg> = def.uses().into_iter().collect();
            let ok = ops.iter().all(|&x| {
                x != r
                    && !(i + 1..last_j).any(|k| insts[k].def() == Some(x))
                    && crossed.iter().all(|&(j, id)| {
                        live.live_before(f, b, j).contains(x)
                            && !recipes.pruned_at(id).any(|p| p == x)
                    })
            });
            if !ok {
                continue;
            }
            // r must not already serve as a recipe operand at any crossed
            // boundary.
            if crossed
                .iter()
                .any(|&(_, id)| recipe_operands.get(&id).is_some_and(|v| v.contains(&r)))
            {
                continue;
            }
            // Accept: drop the checkpoint, record the recipe everywhere.
            f.blocks[bi].insts[i + 1] = Inst::Nop;
            for &(_, id) in &crossed {
                recipes.by_boundary.entry(id).or_default().push((r, def));
                recipe_operands
                    .entry(id)
                    .or_default()
                    .extend(ops.iter().copied());
            }
        }
    }
    f.sweep_nops();
    recipes
}

/// Optimal checkpoint pruning as a pipeline [`crate::pass::Pass`]; the
/// reconstruction recipes land in [`crate::pass::PassCx::recipes`] for the
/// recovery-block lowering.
pub struct PrunePass;

impl crate::pass::Pass for PrunePass {
    fn name(&self) -> &'static str {
        "prune"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        *cx.recipes = prune_checkpoints(&mut prog.func);
        cx.metrics.add(
            turnpike_metrics::Counter::CkptsPruned,
            cx.recipes.len() as u64,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::insert_checkpoints;
    use turnpike_ir::{BinOp, FunctionBuilder, Operand};

    /// def a; ckpt a; def r = a+9; ckpt r; boundary; use r, a.
    fn candidate() -> Function {
        let mut b = FunctionBuilder::new("c");
        let a = b.fresh_reg();
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(a, 5i64);
        b.bin(BinOp::Add, r, a, 9i64);
        b.inst(Inst::RegionBoundary { id: 7 });
        b.add(w, r, Operand::Reg(a));
        b.inst(Inst::RegionBoundary { id: 8 });
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        f
    }

    #[test]
    fn prunes_reconstructible_checkpoint() {
        let mut f = candidate();
        let before = f.ckpt_count();
        let recipes = prune_checkpoints(&mut f);
        // a = mov 5 is a constant: pruned first. r = a + 9 then keeps its
        // checkpoint because its operand a was pruned at the same boundary
        // (greedy, order-dependent — still one checkpoint saved).
        assert_eq!(recipes.len(), 1);
        assert_eq!(f.ckpt_count(), before - 1);
        let list = recipes.by_boundary.get(&7).unwrap();
        assert_eq!(list[0].0, turnpike_ir::Reg(0));
        assert!(!recipes.is_empty());
    }

    #[test]
    fn constant_mov_is_prunable() {
        let mut b = FunctionBuilder::new("k");
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(r, 42i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, r, 1i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        assert_eq!(f.ckpt_count(), 1);
        let recipes = prune_checkpoints(&mut f);
        assert_eq!(recipes.len(), 1);
        assert_eq!(f.ckpt_count(), 0);
    }

    #[test]
    fn load_definitions_are_never_pruned() {
        let mut b = FunctionBuilder::new("ld");
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.load_abs(r, 0x1000);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, r, 1i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let n = f.ckpt_count();
        let recipes = prune_checkpoints(&mut f);
        assert!(recipes.is_empty());
        assert_eq!(f.ckpt_count(), n);
    }

    #[test]
    fn self_referential_def_is_not_pruned() {
        // r = r + 1: the pre-definition value is unavailable at recovery.
        let mut b = FunctionBuilder::new("self");
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(r, 0i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(r, r, 1i64);
        b.inst(Inst::RegionBoundary { id: 2 });
        b.add(w, r, 0i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let recipes = prune_checkpoints(&mut f);
        assert!(recipes.pruned_at(2).next().is_none());
    }

    #[test]
    fn operand_redefined_before_boundary_blocks_pruning() {
        let mut b = FunctionBuilder::new("redef");
        let a = b.fresh_reg();
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(a, 5i64);
        b.bin(BinOp::Add, r, a, 9i64);
        b.mov(a, 6i64); // a changes between def and boundary
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, r, Operand::Reg(a));
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let recipes = prune_checkpoints(&mut f);
        // r's recipe would read the *new* a: must not prune r.
        assert!(recipes
            .by_boundary
            .values()
            .flatten()
            .all(|(reg, _)| *reg != r));
    }

    #[test]
    fn value_live_past_next_boundary_blocks_pruning() {
        let mut b = FunctionBuilder::new("far");
        let a = b.fresh_reg();
        let r = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(a, 5i64);
        b.bin(BinOp::Add, r, a, 9i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.inst(Inst::RegionBoundary { id: 2 });
        b.add(w, r, 0i64); // r live across two boundaries
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        let recipes = prune_checkpoints(&mut f);
        assert!(recipes
            .by_boundary
            .values()
            .flatten()
            .all(|(reg, _)| *reg != r));
    }
}
