//! Reference interpreter — the golden semantics for IR programs.
//!
//! The cycle-level simulator in `turnpike-sim` must produce the same final
//! architectural memory and return value as this interpreter; the
//! fault-injection audit in `turnpike-resilience` compares against it to
//! detect silent data corruptions.

use crate::block::Terminator;
use crate::function::Program;
use crate::inst::{Addr, Inst};
use crate::reg::Operand;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Interpreter limits.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum dynamic instructions before aborting (guards infinite loops).
    pub max_steps: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 200_000_000,
        }
    }
}

/// Failures the interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step limit was exceeded.
    StepLimit(u64),
    /// A memory access used an unaligned address.
    Unaligned(u64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
            InterpError::Unaligned(a) => write!(f, "unaligned 8-byte access at {a:#x}"),
        }
    }
}

impl Error for InterpError {}

/// Result of a completed interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value returned by the function, if any.
    pub ret: Option<i64>,
    /// Final data memory (address → word), excluding checkpoint storage.
    pub memory: BTreeMap<u64, i64>,
    /// Final checkpoint storage contents (address → word).
    pub ckpt_memory: BTreeMap<u64, i64>,
    /// Dynamic instruction count (terminators included).
    pub dyn_insts: u64,
    /// Dynamic regular (non-checkpoint) stores executed.
    pub dyn_stores: u64,
    /// Dynamic checkpoint stores executed.
    pub dyn_ckpts: u64,
    /// Dynamic loads executed.
    pub dyn_loads: u64,
    /// Dynamic region boundaries crossed.
    pub dyn_boundaries: u64,
}

/// Run a program to completion under the reference semantics.
///
/// Checkpoint stores write `ckpt_slot_addr(reg, 0)` in a separate shadow map
/// so the architectural memory comparison stays meaningful; region boundaries
/// are functional no-ops.
///
/// # Errors
///
/// Returns [`InterpError::StepLimit`] if the program runs longer than
/// `config.max_steps` dynamic instructions, and [`InterpError::Unaligned`]
/// for misaligned accesses.
pub fn run(program: &Program, config: &InterpConfig) -> Result<ExecOutcome, InterpError> {
    let f = &program.func;
    let mut regs = vec![0i64; f.num_regs.max(1) as usize];
    for (r, v) in f.params.iter().zip(&program.param_values) {
        regs[r.index()] = *v;
    }
    let mut memory: BTreeMap<u64, i64> = BTreeMap::new();
    for (i, w) in program.data.words.iter().enumerate() {
        memory.insert(program.data.base + i as u64 * 8, *w);
    }
    let mut ckpt_memory: BTreeMap<u64, i64> = BTreeMap::new();

    let mut out = ExecOutcome {
        ret: None,
        memory: BTreeMap::new(),
        ckpt_memory: BTreeMap::new(),
        dyn_insts: 0,
        dyn_stores: 0,
        dyn_ckpts: 0,
        dyn_loads: 0,
        dyn_boundaries: 0,
    };

    let read = |regs: &[i64], op: Operand| -> i64 {
        match op {
            Operand::Reg(r) => regs[r.index()],
            Operand::Imm(v) => v,
        }
    };
    let eff_addr = |regs: &[i64], a: Addr| -> Result<u64, InterpError> {
        let base = a.base.map(|r| regs[r.index()]).unwrap_or(0);
        let addr = base.wrapping_add(a.offset) as u64;
        if !addr.is_multiple_of(8) {
            return Err(InterpError::Unaligned(addr));
        }
        Ok(addr)
    };

    let mut bb = f.entry;
    'outer: loop {
        let block = f.block(bb);
        for inst in &block.insts {
            out.dyn_insts += 1;
            if out.dyn_insts > config.max_steps {
                return Err(InterpError::StepLimit(config.max_steps));
            }
            match *inst {
                Inst::Bin { op, dst, lhs, rhs } => {
                    regs[dst.index()] = op.eval(read(&regs, lhs), read(&regs, rhs));
                }
                Inst::Cmp { op, dst, lhs, rhs } => {
                    regs[dst.index()] = op.eval(read(&regs, lhs), read(&regs, rhs));
                }
                Inst::Mov { dst, src } => {
                    regs[dst.index()] = read(&regs, src);
                }
                Inst::Load { dst, addr } => {
                    let a = eff_addr(&regs, addr)?;
                    regs[dst.index()] = memory.get(&a).copied().unwrap_or(0);
                    out.dyn_loads += 1;
                }
                Inst::Store { src, addr } => {
                    let a = eff_addr(&regs, addr)?;
                    memory.insert(a, read(&regs, src));
                    out.dyn_stores += 1;
                }
                Inst::Ckpt { reg } => {
                    let slot = crate::ckpt_slot_addr(reg.0.min(255) as u8, 0);
                    ckpt_memory.insert(slot, regs[reg.index()]);
                    out.dyn_ckpts += 1;
                }
                Inst::RegionBoundary { .. } => {
                    out.dyn_boundaries += 1;
                }
                Inst::Nop => {}
            }
        }
        out.dyn_insts += 1;
        match block.term {
            Terminator::Jump(t) => bb = t,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                bb = if regs[cond.index()] != 0 {
                    then_bb
                } else {
                    else_bb
                };
            }
            Terminator::Ret { value } => {
                out.ret = value.map(|v| read(&regs, v));
                break 'outer;
            }
        }
        if out.dyn_insts > config.max_steps {
            return Err(InterpError::StepLimit(config.max_steps));
        }
    }
    out.memory = memory;
    out.ckpt_memory = ckpt_memory;
    Ok(out)
}

/// Convenience: run and return only the architectural memory and return
/// value, for equivalence checks.
///
/// # Errors
///
/// Propagates any [`InterpError`] from [`run`].
pub fn golden(program: &Program) -> Result<(Option<i64>, BTreeMap<u64, i64>), InterpError> {
    let out = run(program, &InterpConfig::default())?;
    Ok((out.ret, out.memory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{DataSegment, Program};
    use crate::inst::CmpOp;

    fn r(v: i64) -> Operand {
        Operand::Imm(v)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = FunctionBuilder::new("a");
        let x = b.fresh_reg();
        let y = b.fresh_reg();
        b.mov(x, r(6));
        b.mul(y, x, r(7));
        b.ret(Some(Operand::Reg(y)));
        let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 0));
        let out = run(&p, &InterpConfig::default()).unwrap();
        assert_eq!(out.ret, Some(42));
        assert_eq!(out.dyn_insts, 3);
    }

    #[test]
    fn memory_roundtrip_and_counts() {
        let mut b = FunctionBuilder::new("m");
        let base = b.param();
        let v = b.fresh_reg();
        b.store(r(11), base, 0);
        b.store(r(22), base, 8);
        b.load(v, base, 8);
        b.ret(Some(Operand::Reg(v)));
        let f = b.finish().unwrap();
        let p = Program::with_params(f, DataSegment::zeroed(0x1000, 2), vec![0x1000]);
        let out = run(&p, &InterpConfig::default()).unwrap();
        assert_eq!(out.ret, Some(22));
        assert_eq!(out.memory.get(&0x1000), Some(&11));
        assert_eq!(out.memory.get(&0x1008), Some(&22));
        assert_eq!(out.dyn_stores, 2);
        assert_eq!(out.dyn_loads, 1);
    }

    #[test]
    fn loop_executes_to_completion() {
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let acc = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, r(0));
        b.mov(acc, r(0));
        b.jump(body);
        b.switch_to(body);
        b.add(acc, acc, Operand::Reg(i));
        b.add(i, i, r(1));
        b.cmp(CmpOp::Lt, c, i, r(100));
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(acc)));
        let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 0));
        let out = run(&p, &InterpConfig::default()).unwrap();
        assert_eq!(out.ret, Some(4950));
    }

    #[test]
    fn ckpt_goes_to_shadow_memory() {
        let mut b = FunctionBuilder::new("c");
        let x = b.fresh_reg();
        b.mov(x, r(9));
        b.inst(Inst::Ckpt { reg: x });
        b.inst(Inst::RegionBoundary { id: 0 });
        b.ret(None);
        let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 0));
        let out = run(&p, &InterpConfig::default()).unwrap();
        assert!(out.memory.is_empty());
        assert_eq!(out.ckpt_memory.get(&crate::ckpt_slot_addr(0, 0)), Some(&9));
        assert_eq!(out.dyn_ckpts, 1);
        assert_eq!(out.dyn_boundaries, 1);
    }

    #[test]
    fn step_limit_fires() {
        let mut b = FunctionBuilder::new("inf");
        let body = b.create_block();
        b.jump(body);
        b.switch_to(body);
        b.jump(body);
        let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0, 0));
        let err = run(&p, &InterpConfig { max_steps: 100 }).unwrap_err();
        assert_eq!(err, InterpError::StepLimit(100));
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn unaligned_access_rejected() {
        let mut b = FunctionBuilder::new("u");
        let x = b.fresh_reg();
        b.load_abs(x, 0x1001);
        b.ret(None);
        let p = Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 1));
        assert_eq!(
            run(&p, &InterpConfig::default()).unwrap_err(),
            InterpError::Unaligned(0x1001)
        );
    }

    #[test]
    fn data_segment_preloaded() {
        let mut b = FunctionBuilder::new("d");
        let base = b.param();
        let v = b.fresh_reg();
        b.load(v, base, 16);
        b.ret(Some(Operand::Reg(v)));
        let f = b.finish().unwrap();
        let p = Program::with_params(
            f,
            DataSegment::with_words(0x1000, vec![5, 6, 7]),
            vec![0x1000],
        );
        assert_eq!(golden(&p).unwrap().0, Some(7));
    }

    #[test]
    fn branch_selects_correct_arm() {
        for (input, expect) in [(1i64, 10i64), (0, 20)] {
            let mut b = FunctionBuilder::new("br");
            let p0 = b.param();
            let out = b.fresh_reg();
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            b.branch(p0, t, e);
            b.switch_to(t);
            b.mov(out, r(10));
            b.jump(j);
            b.switch_to(e);
            b.mov(out, r(20));
            b.jump(j);
            b.switch_to(j);
            b.ret(Some(Operand::Reg(out)));
            let f = b.finish().unwrap();
            let p = Program::with_params(f, DataSegment::zeroed(0, 0), vec![input]);
            assert_eq!(golden(&p).unwrap().0, Some(expect));
        }
    }
}
