//! Eager checkpointing (paper §2.2).
//!
//! Turnstile saves every updated live-out register to memory with a
//! checkpoint store inserted *right after* the register-update instruction.
//! "Live-out" here means live at a region boundary: a register whose value
//! never crosses a boundary is recomputed by the region restart and needs no
//! checkpoint.
//!
//! The analysis computes, backward, the set `LB` of registers whose current
//! value is live at some reachable region boundary before being redefined:
//!
//! * at a boundary, `LB` becomes the live set at that point (every live
//!   register crosses the boundary here);
//! * a definition of `r` removes `r` (the older value no longer crosses).
//!
//! A checkpoint is inserted after each definition whose target is in `LB` at
//! that point. Program parameters are not checkpointed by code: their
//! checkpoint slots are pre-initialized (and pre-verified) by the loader,
//! exactly as a real system finds its inputs in ECC-protected memory.

use turnpike_ir::{BlockId, Cfg, Function, Inst, Liveness, RegSet};

/// Remove every checkpoint instruction. Returns the number removed.
pub fn strip_ckpts(f: &mut Function) -> u32 {
    let mut n = 0;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| !i.is_ckpt());
        n += (before - b.insts.len()) as u32;
    }
    n
}

/// Insert eager checkpoints. Returns the number inserted.
///
/// Must be called on checkpoint-free code (call [`strip_ckpts`] first when
/// re-running after boundary changes).
pub fn insert_checkpoints(f: &mut Function) -> u32 {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let n = f.blocks.len();
    let cap = f.num_regs;

    // Fixpoint for LB_in/LB_out.
    let mut lb_in = vec![RegSet::new(cap); n];
    let mut lb_out = vec![RegSet::new(cap); n];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo().iter().rev() {
            let bi = b.index();
            let mut out = RegSet::new(cap);
            for &s in cfg.succs(b) {
                out.union_with(&lb_in[s.index()]);
            }
            let inp = transfer_block(f, &live, b, &out, None);
            if out != lb_out[bi] {
                lb_out[bi] = out;
                changed = true;
            }
            if inp != lb_in[bi] {
                lb_in[bi] = inp;
                changed = true;
            }
        }
    }

    // Decision pass: record, per block, the instruction indices needing a
    // trailing checkpoint.
    let mut inserted = 0;
    for (b, lb) in lb_out.iter().enumerate() {
        let id = BlockId(b as u32);
        let mut need: Vec<(usize, turnpike_ir::Reg)> = Vec::new();
        transfer_block(f, &live, id, lb, Some(&mut need));
        // Insert from the back so indices stay valid.
        for &(i, r) in need.iter() {
            f.blocks[b].insts.insert(i + 1, Inst::Ckpt { reg: r });
            inserted += 1;
        }
    }
    inserted
}

/// Backward transfer of the LB set through one block. When `record` is
/// given, definitions whose register is in `LB` after them are pushed
/// (in decreasing index order, ready for back-to-front insertion).
fn transfer_block(
    f: &Function,
    live: &Liveness,
    b: BlockId,
    lb_out: &RegSet,
    mut record: Option<&mut Vec<(usize, turnpike_ir::Reg)>>,
) -> RegSet {
    let blk = f.block(b);
    let mut lb = lb_out.clone();
    let mut live_now = live.live_out(b).clone();
    for u in blk.term.uses() {
        live_now.insert(u);
    }
    for i in (0..blk.insts.len()).rev() {
        let inst = blk.insts[i];
        if let Some(d) = inst.def() {
            if lb.contains(d) {
                if let Some(rec) = record.as_deref_mut() {
                    rec.push((i, d));
                }
            }
        }
        if inst.is_boundary() {
            lb = live_now.clone();
        } else if let Some(d) = inst.def() {
            lb.remove(d);
        }
        if let Some(d) = inst.def() {
            live_now.remove(d);
        }
        for u in inst.uses() {
            live_now.insert(u);
        }
    }
    lb
}

/// The eager-checkpoint / budget-split fixpoint as a pipeline
/// [`crate::pass::Pass`]: re-derives checkpoints and splits overfull
/// regions until every region fits the budget, then asserts the static
/// store bound.
pub struct CheckpointFixpointPass;

/// Iteration cap of the checkpoint/split fixpoint. In practice the loop
/// converges in a handful of iterations; hitting the cap with work left
/// fails the compile with [`crate::pipeline::CompileError::FixpointDiverged`].
pub const FIXPOINT_MAX_ITERATIONS: u32 = 32;

impl crate::pass::Pass for CheckpointFixpointPass {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn run(
        &self,
        prog: &mut turnpike_ir::Program,
        cx: &mut crate::pass::PassCx<'_>,
    ) -> Result<(), crate::pipeline::CompileError> {
        use crate::partition::{ensure_ckpt_loops, max_region_stores, split_overfull};
        use crate::pipeline::CompileError;
        use turnpike_metrics::Counter;

        let budget = cx.config.region_budget();
        let mut inserted = 0u32;
        let mut iterations = 0u32;
        let mut extra = 0u32;
        for _ in 0..FIXPOINT_MAX_ITERATIONS {
            strip_ckpts(&mut prog.func);
            inserted = insert_checkpoints(&mut prog.func);
            // Boundary-free loops keep their per-iteration checkpoints out
            // of the budget dataflow (same-slot stores coalesce into one SB
            // entry per register); in exchange the number of distinct
            // registers such a loop checkpoints is capped so that, together
            // with the enclosing region's budgeted stores, the SB can never
            // be exceeded by one region's own entries.
            let loop_ckpt_cap = (cx.config.sb_size - budget).max(1);
            extra = split_overfull(&mut prog.func, budget)
                + ensure_ckpt_loops(&mut prog.func, loop_ckpt_cap);
            iterations += 1;
            if extra == 0 {
                break;
            }
        }
        if extra != 0 {
            return Err(CompileError::FixpointDiverged { iterations });
        }
        cx.metrics.add(Counter::CkptsInserted, u64::from(inserted));
        cx.metrics
            .add(Counter::SplitIterations, u64::from(iterations));
        let bound = max_region_stores(&prog.func, cx.config.sb_size);
        if bound > cx.config.sb_size {
            return Err(CompileError::RegionOverflow {
                stores: bound,
                limit: cx.config.sb_size,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{FunctionBuilder, Operand, Reg};

    #[test]
    fn def_crossing_boundary_is_checkpointed() {
        let mut b = FunctionBuilder::new("x");
        let v = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(v, 3i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, v, 1i64); // v used after the boundary
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        assert_eq!(insert_checkpoints(&mut f), 1);
        assert_eq!(f.blocks[0].insts[1], Inst::Ckpt { reg: v });
        // w never crosses a boundary: no checkpoint for it.
        assert_eq!(f.ckpt_count(), 1);
    }

    #[test]
    fn dead_past_boundary_is_not_checkpointed() {
        let mut b = FunctionBuilder::new("d");
        let v = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(v, 3i64);
        b.add(w, v, 1i64); // v consumed before the boundary
        b.inst(Inst::RegionBoundary { id: 1 });
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        // Only w crosses.
        assert_eq!(f.ckpt_count(), 1);
        assert_eq!(f.blocks[0].insts[2], Inst::Ckpt { reg: w });
    }

    #[test]
    fn only_last_def_in_region_is_checkpointed() {
        // Figure 3(b): redefinition before the boundary kills the first
        // definition's checkpoint.
        let mut b = FunctionBuilder::new("last");
        let v = b.fresh_reg();
        let w = b.fresh_reg();
        b.mov(v, 1i64);
        b.add(v, v, 1i64); // redefines v
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, v, 0i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        assert_eq!(insert_checkpoints(&mut f), 1);
        // The checkpoint follows the second definition (index 1).
        assert_eq!(f.blocks[0].insts[2], Inst::Ckpt { reg: v });
    }

    #[test]
    fn short_regions_checkpoint_more_figure3() {
        // Figure 3(a) vs (b): the same code with a boundary between two
        // defs of v checkpoints v twice; without it, once.
        let build = |split: bool| {
            let mut b = FunctionBuilder::new("f3");
            let v = b.fresh_reg();
            let w = b.fresh_reg();
            b.add(v, v, 4i64);
            if split {
                b.inst(Inst::RegionBoundary { id: 1 });
            }
            b.add(v, v, 8i64); // models the reload in Fig 3
            b.inst(Inst::RegionBoundary { id: 2 });
            b.add(w, v, 0i64);
            b.ret(Some(Operand::Reg(w)));
            b.finish().unwrap()
        };
        let mut long = build(false);
        let mut short = build(true);
        insert_checkpoints(&mut long);
        insert_checkpoints(&mut short);
        assert_eq!(long.ckpt_count(), 1);
        assert_eq!(short.ckpt_count(), 2);
    }

    #[test]
    fn loop_carried_value_checkpointed_each_iteration() {
        let mut b = FunctionBuilder::new("lc");
        let i = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(i, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.inst(Inst::RegionBoundary { id: 1 }); // header boundary
        b.add(i, i, 1i64);
        b.cmp_lt(c, i, 10i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(i)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        // i crosses the header boundary every iteration -> in-loop ckpt.
        let in_loop: Vec<_> = f.blocks[1].insts.iter().filter(|x| x.is_ckpt()).collect();
        assert_eq!(in_loop.len(), 1);
        // c is consumed by the terminator before any boundary: no ckpt for
        // it. The entry block's `mov i, 0` also crosses the header boundary,
        // so the total is 2 (entry + in-loop).
        assert_eq!(f.ckpt_count(), 2);
    }

    #[test]
    fn strip_is_inverse_of_insert() {
        let mut b = FunctionBuilder::new("s");
        let v = b.fresh_reg();
        b.mov(v, 3i64);
        b.inst(Inst::RegionBoundary { id: 1 });
        b.store_abs(v, 0x1000);
        b.ret(None);
        let mut f = b.finish().unwrap();
        let orig = f.clone();
        let n = insert_checkpoints(&mut f);
        assert_eq!(strip_ckpts(&mut f), n);
        assert_eq!(f, orig);
    }

    #[test]
    fn params_are_not_checkpointed_by_code() {
        let mut b = FunctionBuilder::new("p");
        let p = b.param();
        let w = b.fresh_reg();
        b.inst(Inst::RegionBoundary { id: 1 });
        b.add(w, p, 1i64);
        b.ret(Some(Operand::Reg(w)));
        let mut f = b.finish().unwrap();
        insert_checkpoints(&mut f);
        assert_eq!(
            f.blocks[0]
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::Ckpt { reg } if *reg == Reg(0)))
                .count(),
            0,
            "params rely on pre-verified loader checkpoints"
        );
    }
}
