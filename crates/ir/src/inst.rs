//! IR instructions.

use crate::reg::{Operand, Reg};
use std::fmt;

/// Binary arithmetic/logical operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero yields zero (matching the
    /// simulator's hardware semantics so golden runs never trap).
    Div,
    /// Signed remainder; remainder by zero yields zero.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
}

impl BinOp {
    /// Evaluate the operation on concrete values.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }

    /// Execution latency in cycles on the modeled in-order core.
    ///
    /// Used by the checkpoint-aware list scheduler; must stay consistent with
    /// the latencies in `turnpike-sim`.
    pub fn latency(self) -> u32 {
        match self {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
            _ => 1,
        }
    }

    /// All operations, for exhaustive property tests.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Comparison operations (signed), producing 1 or 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison, returning 1 for true and 0 for false.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let t = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        t as i64
    }

    /// All comparisons, for exhaustive property tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A memory address: optional base register plus a signed byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Base register; `None` means absolute addressing.
    pub base: Option<Reg>,
    /// Signed byte offset added to the base (or the absolute address).
    pub offset: i64,
}

impl Addr {
    /// Address formed from a base register plus offset.
    pub fn reg_offset(base: Reg, offset: i64) -> Self {
        Addr {
            base: Some(base),
            offset,
        }
    }

    /// Absolute address.
    pub fn abs(addr: i64) -> Self {
        Addr {
            base: None,
            offset: addr,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) => write!(f, "[{b}{:+}]", self.offset),
            None => write!(f, "[{:#x}]", self.offset),
        }
    }
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = lhs op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = memory[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Effective address.
        addr: Addr,
    },
    /// `memory[addr] = src`.
    Store {
        /// Stored value.
        src: Operand,
        /// Effective address.
        addr: Addr,
    },
    /// Checkpoint store: saves `reg` to its checkpoint storage slot.
    ///
    /// Inserted by the eager-checkpointing pass; never written by frontends.
    Ckpt {
        /// Register being checkpointed.
        reg: Reg,
    },
    /// Region boundary marker (ends the current verifiable region and starts
    /// the next). Inserted by the region partitioner; `id` is a stable
    /// identity that survives later passes so recovery metadata can refer to
    /// a specific boundary (codegen renumbers boundaries sequentially).
    RegionBoundary {
        /// Stable boundary identity assigned by the partitioner.
        id: u32,
    },
    /// No operation. Used by passes to delete instructions in place.
    Nop,
}

impl Inst {
    /// Register defined by this instruction, if any.
    pub fn def(self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. } | Inst::Cmp { dst, .. } | Inst::Mov { dst, .. } => Some(dst),
            Inst::Load { dst, .. } => Some(dst),
            Inst::Store { .. } | Inst::Ckpt { .. } | Inst::RegionBoundary { .. } | Inst::Nop => {
                None
            }
        }
    }

    /// Registers read by this instruction, in a small fixed-size buffer.
    pub fn uses(self) -> InstUses {
        let mut buf = [None; 3];
        let mut n = 0;
        let mut push = |r: Option<Reg>| {
            if let Some(r) = r {
                buf[n] = Some(r);
                n += 1;
            }
        };
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                push(lhs.reg());
                push(rhs.reg());
            }
            Inst::Mov { src, .. } => push(src.reg()),
            Inst::Load { addr, .. } => push(addr.base),
            Inst::Store { src, addr } => {
                push(src.reg());
                push(addr.base);
            }
            Inst::Ckpt { reg } => push(Some(reg)),
            Inst::RegionBoundary { .. } | Inst::Nop => {}
        }
        InstUses { buf, len: n }
    }

    /// Whether this instruction reads or writes memory (including
    /// checkpoint stores).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Ckpt { .. }
        )
    }

    /// Whether this instruction writes memory (regular store or checkpoint).
    pub fn is_store(self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Ckpt { .. })
    }

    /// Whether this is a checkpoint store.
    pub fn is_ckpt(self) -> bool {
        matches!(self, Inst::Ckpt { .. })
    }

    /// Whether this is a region boundary marker.
    pub fn is_boundary(self) -> bool {
        matches!(self, Inst::RegionBoundary { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::Cmp { op, dst, lhs, rhs } => write!(f, "{dst} = cmp.{op} {lhs}, {rhs}"),
            Inst::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
            Inst::Load { dst, addr } => write!(f, "{dst} = ld {addr}"),
            Inst::Store { src, addr } => write!(f, "st {src}, {addr}"),
            Inst::Ckpt { reg } => write!(f, "ckpt {reg}"),
            Inst::RegionBoundary { id } => write!(f, "region_boundary #{id}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// Iterator-friendly buffer of registers read by an instruction.
#[derive(Debug, Clone, Copy)]
pub struct InstUses {
    buf: [Option<Reg>; 3],
    len: usize,
}

impl InstUses {
    /// Number of register uses.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the instruction reads no registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the used registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.buf[..self.len].iter().map(|r| r.expect("within len"))
    }
}

impl IntoIterator for InstUses {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, -3), -12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(-16, 2), -4);
    }

    #[test]
    fn div_rem_by_zero_is_zero() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        // i64::MIN / -1 wraps rather than trapping.
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(8, 67), 1);
    }

    #[test]
    fn cmp_eval() {
        assert_eq!(CmpOp::Eq.eval(1, 1), 1);
        assert_eq!(CmpOp::Ne.eval(1, 1), 0);
        assert_eq!(CmpOp::Lt.eval(-2, 1), 1);
        assert_eq!(CmpOp::Le.eval(1, 1), 1);
        assert_eq!(CmpOp::Gt.eval(2, 1), 1);
        assert_eq!(CmpOp::Ge.eval(0, 1), 0);
    }

    #[test]
    fn defs_and_uses() {
        let r = |i| Reg(i);
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: r(0),
            lhs: Operand::Reg(r(1)),
            rhs: Operand::Imm(3),
        };
        assert_eq!(i.def(), Some(r(0)));
        let uses: Vec<_> = i.uses().into_iter().collect();
        assert_eq!(uses, vec![r(1)]);

        let s = Inst::Store {
            src: Operand::Reg(r(2)),
            addr: Addr::reg_offset(r(3), 8),
        };
        assert_eq!(s.def(), None);
        let uses: Vec<_> = s.uses().into_iter().collect();
        assert_eq!(uses, vec![r(2), r(3)]);
        assert!(s.is_store());
        assert!(!s.is_ckpt());

        let c = Inst::Ckpt { reg: r(4) };
        assert!(c.is_store() && c.is_ckpt() && c.is_mem());
        let uses: Vec<_> = c.uses().into_iter().collect();
        assert_eq!(uses, vec![r(4)]);

        assert!(Inst::RegionBoundary { id: 0 }.is_boundary());
        assert!(Inst::Nop.uses().is_empty());
        assert_eq!(Inst::Nop.uses().len(), 0);
    }

    #[test]
    fn latencies_match_core_model() {
        assert_eq!(BinOp::Add.latency(), 1);
        assert_eq!(BinOp::Mul.latency(), 3);
        assert_eq!(BinOp::Div.latency(), 12);
    }

    #[test]
    fn display_forms() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(4),
        };
        assert_eq!(i.to_string(), "v0 = add v1, 4");
        let l = Inst::Load {
            dst: Reg(2),
            addr: Addr::reg_offset(Reg(1), -8),
        };
        assert_eq!(l.to_string(), "v2 = ld [v1-8]");
        assert_eq!(
            Inst::Store {
                src: Operand::Imm(1),
                addr: Addr::abs(0x1000)
            }
            .to_string(),
            "st 1, [0x1000]"
        );
        assert_eq!(Inst::Ckpt { reg: Reg(5) }.to_string(), "ckpt v5");
    }
}
