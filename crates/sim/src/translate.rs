//! Superblock pre-decode for the fast golden-path dispatch.
//!
//! The interpreter's [`Core::step`](crate::Core) re-derives everything it
//! needs from the [`MachInst`] on every dynamic instruction: the source
//! register set (`uses`), the addressing-mode base, the latency class, the
//! checkpoint flag. None of that changes between executions of the same
//! static instruction, so a [`Translation`] computes it once per program:
//!
//! * every instruction becomes a `DecodedOp` with its operand slots
//!   (source registers as a flat array), its destination, its latency, and
//!   its resolved addressing mode;
//! * consecutive non-control instructions are grouped into **superblocks**:
//!   `run_len[pc]` is the number of straight-line ops starting at `pc`
//!   before the next control-flow instruction. The core's fast path
//!   dispatches one superblock at a time — the fetch-redirect gate is
//!   hoisted to the block head (only a taken branch or a recovery can move
//!   it, and both end a block), and the per-instruction loop touches only
//!   pre-decoded fields.
//!
//! Translation is purely an execution strategy: the fast path issues the
//! same helper calls (`wait_until`, `take_slot`, `define`, the store/ckpt
//! paths, `settle`) in the same order as the interpreter, so cycles, stats,
//! and architectural results are bit-identical. The core only enters the
//! fast path in *quiet* states (no pending faults or detections, no trace
//! sink, no snapshot capture, no replay compare) where the skipped
//! per-instruction work — fault processing, parity access checks, snapshot
//! cadence checks — is provably a no-op.

use turnpike_ir::{BinOp, CmpOp};
use turnpike_isa::{MOperand, MachAddr, MachInst, MachProgram, RegionId};

/// A pre-decoded operand: register index or immediate.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DOperand {
    /// Register index.
    Reg(u8),
    /// Immediate value.
    Imm(i64),
}

impl DOperand {
    fn from_op(op: MOperand) -> Self {
        match op {
            MOperand::Reg(r) => DOperand::Reg(r.raw()),
            MOperand::Imm(v) => DOperand::Imm(v),
        }
    }
}

/// A pre-decoded addressing mode.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DAddr {
    /// Base register plus signed byte offset.
    RegOff(u8, i64),
    /// Absolute byte address.
    Abs(u64),
    /// Checkpoint slot of a register (recovery-block addressing).
    Ckpt(u8),
}

impl DAddr {
    fn from_addr(a: MachAddr) -> Self {
        match a {
            MachAddr::RegOffset(r, o) => DAddr::RegOff(r.raw(), o),
            MachAddr::Abs(a) => DAddr::Abs(a),
            MachAddr::CkptSlot(r) => DAddr::Ckpt(r.raw()),
        }
    }
}

/// The operation class of a [`DecodedOp`], with every per-kind field the
/// issue loop needs resolved at translation time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DKind {
    /// `dst = lhs op rhs` with the op's precomputed latency.
    Bin {
        op: BinOp,
        dst: u8,
        lhs: u8,
        rhs: DOperand,
        lat: u64,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`.
    Cmp {
        op: CmpOp,
        dst: u8,
        lhs: u8,
        rhs: DOperand,
    },
    /// `dst = src`.
    Mov { dst: u8, src: DOperand },
    /// `dst = memory[addr]`; `ckpt_slot` marks recovery-block addressing
    /// (no CLQ recording, checkpoint storage access).
    Load {
        dst: u8,
        addr: DAddr,
        ckpt_slot: bool,
    },
    /// `memory[addr] = src`.
    Store { src: DOperand, addr: DAddr },
    /// Checkpoint of a register.
    Ckpt { reg: u8 },
    /// Region boundary marker.
    Boundary { id: RegionId },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Branch if `cond != 0`.
    BranchNz { cond: u8, target: u32 },
    /// Program end.
    Ret { value: Option<DOperand> },
    /// No operation.
    Nop,
}

/// One pre-decoded instruction: operation plus its flat source-register
/// slots (what [`MachInst::uses`] computes per dynamic instruction).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedOp {
    /// The operation.
    pub kind: DKind,
    /// Source registers, `srcs[..nsrcs]` valid.
    pub srcs: [u8; 3],
    /// Number of valid source slots.
    pub nsrcs: u8,
}

/// A translated program: pre-decoded ops plus the superblock run lengths.
#[derive(Debug)]
pub struct Translation {
    pub(crate) ops: Vec<DecodedOp>,
    /// Number of consecutive straight-line (non-control) ops starting at
    /// each pc; `0` at control-flow instructions.
    pub(crate) run_len: Vec<u32>,
}

impl Translation {
    /// Pre-decode `program` in one linear pass.
    pub fn new(program: &MachProgram) -> Self {
        let ops: Vec<DecodedOp> = program.insts.iter().map(|&i| decode(i)).collect();
        let mut run_len = vec![0u32; ops.len()];
        for i in (0..ops.len()).rev() {
            let straight = !matches!(
                ops[i].kind,
                DKind::Jump { .. } | DKind::BranchNz { .. } | DKind::Ret { .. }
            );
            if straight {
                run_len[i] = 1 + if i + 1 < ops.len() { run_len[i + 1] } else { 0 };
            }
        }
        Translation { ops, run_len }
    }

    /// Number of translated instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn decode(inst: MachInst) -> DecodedOp {
    let uses = inst.uses();
    let mut srcs = [0u8; 3];
    for (slot, r) in srcs.iter_mut().zip(uses.iter()) {
        *slot = r.raw();
    }
    let kind = match inst {
        MachInst::Bin { op, dst, lhs, rhs } => DKind::Bin {
            op,
            dst: dst.raw(),
            lhs: lhs.raw(),
            rhs: DOperand::from_op(rhs),
            lat: u64::from(inst.latency()),
        },
        MachInst::Cmp { op, dst, lhs, rhs } => DKind::Cmp {
            op,
            dst: dst.raw(),
            lhs: lhs.raw(),
            rhs: DOperand::from_op(rhs),
        },
        MachInst::Mov { dst, src } => DKind::Mov {
            dst: dst.raw(),
            src: DOperand::from_op(src),
        },
        MachInst::Load { dst, addr } => DKind::Load {
            dst: dst.raw(),
            addr: DAddr::from_addr(addr),
            ckpt_slot: matches!(addr, MachAddr::CkptSlot(_)),
        },
        MachInst::Store { src, addr } => DKind::Store {
            src: DOperand::from_op(src),
            addr: DAddr::from_addr(addr),
        },
        MachInst::Ckpt { reg } => DKind::Ckpt { reg: reg.raw() },
        MachInst::RegionBoundary { id } => DKind::Boundary { id },
        MachInst::Jump { target } => DKind::Jump { target },
        MachInst::BranchNz { cond, target } => DKind::BranchNz {
            cond: cond.raw(),
            target,
        },
        MachInst::Ret { value } => DKind::Ret {
            value: value.map(DOperand::from_op),
        },
        MachInst::Nop => DKind::Nop,
    };
    DecodedOp {
        kind,
        srcs,
        nsrcs: uses.len() as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::DataSegment;
    use turnpike_isa::PhysReg;

    fn r(i: u8) -> PhysReg {
        PhysReg::new(i).unwrap()
    }

    #[test]
    fn run_lengths_stop_at_control_flow() {
        let insts = vec![
            MachInst::Mov {
                dst: r(1),
                src: MOperand::Imm(1),
            },
            MachInst::Bin {
                op: BinOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: MOperand::Imm(1),
            },
            MachInst::BranchNz {
                cond: r(1),
                target: 0,
            },
            MachInst::Nop,
            MachInst::Ret { value: None },
        ];
        let p = MachProgram::from_insts("t", insts, DataSegment::zeroed(0x1000, 0));
        let t = Translation::new(&p);
        assert_eq!(t.len(), 5);
        assert_eq!(t.run_len, vec![2, 1, 0, 1, 0]);
    }

    #[test]
    fn decode_captures_sources_and_latency() {
        let insts = vec![
            MachInst::Bin {
                op: BinOp::Mul,
                dst: r(2),
                lhs: r(3),
                rhs: MOperand::Reg(r(4)),
            },
            MachInst::Store {
                src: MOperand::Reg(r(2)),
                addr: MachAddr::RegOffset(r(5), 8),
            },
            MachInst::Ret { value: None },
        ];
        let p = MachProgram::from_insts("t", insts, DataSegment::zeroed(0x1000, 0));
        let t = Translation::new(&p);
        let mul = &t.ops[0];
        assert_eq!(&mul.srcs[..mul.nsrcs as usize], &[3, 4]);
        match mul.kind {
            DKind::Bin { lat, .. } => assert_eq!(
                lat,
                u64::from(
                    MachInst::Bin {
                        op: BinOp::Mul,
                        dst: r(2),
                        lhs: r(3),
                        rhs: MOperand::Reg(r(4)),
                    }
                    .latency()
                )
            ),
            _ => panic!("expected Bin"),
        }
        let st = &t.ops[1];
        assert_eq!(&st.srcs[..st.nsrcs as usize], &[2, 5]);
        assert!(matches!(
            st.kind,
            DKind::Store {
                addr: DAddr::RegOff(5, 8),
                ..
            }
        ));
    }

    #[test]
    fn empty_program_translates() {
        let p = MachProgram::from_insts("t", vec![], DataSegment::zeroed(0x1000, 0));
        let t = Translation::new(&p);
        assert!(t.is_empty());
    }
}
