//! Persistent content-addressed artifact store.
//!
//! Job results are cached on disk keyed by a canonical description of the
//! work (kernel + full `CompilerConfig`/`SimConfig` rendering + job
//! parameters — the executor builds the key so every knob that affects the
//! output is covered). Entries survive restarts and are shared between the
//! server and the direct CLI: whichever process computes a result first,
//! the other gets a byte-identical payload from the store.
//!
//! # On-disk format (version 1)
//!
//! One entry per file, named `<fnv128-of-key>.art` under a two-level fanout
//! (`ab/cd/abcd….art`). Each file is:
//!
//! ```text
//! turnpike-art 1 <payload-len> <fnv64-of-payload-hex>\n
//! <key>\n
//! <payload bytes>
//! ```
//!
//! The header carries a version so future layouts can coexist; the full
//! key line makes 128-bit hash collisions detectable (compare, don't
//! trust); the length + checksum make truncation and bit-rot detectable.
//! A corrupt or wrong-version entry is **quarantined** (renamed into
//! `quarantine/` for post-mortem) and reported as a miss — never a panic,
//! never served.
//!
//! Writes create missing parent directories and go through a
//! temp-file + rename so a concurrent reader sees either the old entry or
//! the new one, not a torn write.
//!
//! # Garbage collection
//!
//! The store grows without bound by default; long-running fleets cap it
//! with [`Store::gc`], which evicts least-recently-*used* entries until the
//! store fits a byte budget. Recency lives in a sidecar `<hash>.touch`
//! file next to each entry, refreshed on every hit and put; the sidecar's
//! *content* is a microsecond timestamp, so LRU order does not depend on
//! filesystem mtime granularity and tests can fabricate histories by
//! writing sidecars directly. An entry with no sidecar (e.g. written by an
//! older build) sorts oldest and is evicted first. The `quarantine/`
//! directory is evidence, not cache — GC never touches it.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of a [`Store::get`]: distinguishes "never stored" from "stored
/// but unusable" so callers can meter quarantines separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The payload, byte-identical to what was `put`.
    Hit(String),
    /// No entry under this key.
    Miss,
    /// An entry existed but failed validation and was quarantined.
    Quarantined,
}

/// A persistent content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// Format version written and accepted by this build.
const VERSION: u32 = 1;
/// Header magic.
const MAGIC: &str = "turnpike-art";

/// 64-bit FNV-1a.
fn fnv64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// 128 bits of key identity from two independently-seeded FNV-1a passes.
/// Collisions are detected (the full key is stored), so the hash only
/// needs to make them vanishingly rare, not impossible.
fn key_hash(key: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv64(key.as_bytes(), 0),
        fnv64(key.as_bytes(), 0x9e37_79b9_7f4a_7c15)
    )
}

impl Store {
    /// A store rooted at `root`. No I/O happens until the first access;
    /// directories are created on write.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, hash: &str) -> PathBuf {
        self.root
            .join(&hash[0..2])
            .join(&hash[2..4])
            .join(format!("{hash}.art"))
    }

    /// Look up `key`. Corrupt entries are moved into `quarantine/` and
    /// reported as [`Lookup::Quarantined`].
    pub fn get(&self, key: &str) -> Lookup {
        let hash = key_hash(key);
        let path = self.entry_path(&hash);
        let mut raw = Vec::new();
        match fs::File::open(&path).and_then(|mut f| f.read_to_end(&mut raw)) {
            Ok(_) => {}
            Err(_) => return Lookup::Miss,
        }
        match parse_entry(&raw, key) {
            Some(payload) => {
                self.touch(&hash);
                Lookup::Hit(payload)
            }
            None => {
                self.quarantine(&path, &hash);
                Lookup::Quarantined
            }
        }
    }

    /// Store `payload` under `key`, creating missing parent directories.
    /// Concurrent writers race benignly: both write the same bytes for the
    /// same key (payloads are deterministic), and the rename is atomic.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers treat a failed put as "not cached",
    /// never as a job failure).
    pub fn put(&self, key: &str, payload: &str) -> std::io::Result<()> {
        let hash = key_hash(key);
        let path = self.entry_path(&hash);
        let parent = path.parent().expect("entry paths have a fanout parent");
        fs::create_dir_all(parent)?;
        // The temp name must be unique per *writer*, not just per process:
        // two worker threads putting the same key would otherwise share a
        // temp file, and whichever renames second fails with ENOENT.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = parent.join(format!(
            "{hash}.tmp.{}.{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(render_entry(key, payload).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.touch(&hash);
        Ok(())
    }

    /// Move a bad entry aside for post-mortem instead of deleting or
    /// serving it. Best-effort: if the move itself fails the entry is
    /// removed so it cannot be served on the next lookup either.
    fn quarantine(&self, path: &Path, hash: &str) {
        let qdir = self.root.join("quarantine");
        // Repeated corruption of the same key must not overwrite earlier
        // evidence: probe for a free name.
        let dest = (0u32..)
            .map(|n| {
                if n == 0 {
                    qdir.join(format!("{hash}.art"))
                } else {
                    qdir.join(format!("{hash}.{n}.art"))
                }
            })
            .find(|p| !p.exists())
            .expect("unbounded probe sequence");
        let ok = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(path, dest))
            .is_ok();
        if !ok {
            let _ = fs::remove_file(path);
        }
    }

    /// Number of quarantined entries currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.root.join("quarantine"))
            .map(|d| d.count())
            .unwrap_or(0)
    }

    /// Refresh `hash`'s recency sidecar. Best-effort: a failed touch costs
    /// eviction priority, never correctness.
    fn touch(&self, hash: &str) {
        let path = self.entry_path(hash).with_extension("touch");
        let now_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros())
            .unwrap_or(0);
        let _ = fs::write(path, format!("{now_us}"));
    }

    /// Evict least-recently-used entries until the store's `.art` bytes
    /// fit under `max_bytes`. Returns what happened. Quarantined evidence
    /// is never collected.
    ///
    /// Concurrency: eviction races benignly with readers and writers — a
    /// reader of an evicted entry sees a plain miss and recomputes; a
    /// concurrent put of the same key lands after the remove and simply
    /// repopulates the cache.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures; per-entry remove failures are
    /// skipped (the entry just stays until the next collection).
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcStats> {
        struct Entry {
            path: PathBuf,
            bytes: u64,
            touched_us: u128,
        }
        let mut entries: Vec<Entry> = Vec::new();
        if !self.root.is_dir() {
            return Ok(GcStats::default());
        }
        // Walk the two-level fanout; anything else at the root (the
        // quarantine directory, stray temp files) is not GC's business.
        for level1 in fs::read_dir(&self.root)? {
            let level1 = level1?.path();
            if !level1.is_dir() || level1.file_name().is_some_and(|n| n == "quarantine") {
                continue;
            }
            for level2 in fs::read_dir(&level1)? {
                let level2 = level2?.path();
                if !level2.is_dir() {
                    continue;
                }
                for file in fs::read_dir(&level2)? {
                    let path = file?.path();
                    if path.extension().is_none_or(|e| e != "art") {
                        continue;
                    }
                    let Ok(meta) = fs::metadata(&path) else {
                        continue;
                    };
                    // Sidecar content is the LRU clock; absent or
                    // unreadable sidecars sort oldest (evict first).
                    let touched_us = fs::read_to_string(path.with_extension("touch"))
                        .ok()
                        .and_then(|s| s.trim().parse::<u128>().ok())
                        .unwrap_or(0);
                    entries.push(Entry {
                        path,
                        bytes: meta.len(),
                        touched_us,
                    });
                }
            }
        }
        let bytes_before: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut stats = GcStats {
            entries: entries.len(),
            bytes_before,
            bytes_after: bytes_before,
            evicted: 0,
        };
        if bytes_before <= max_bytes {
            return Ok(stats);
        }
        // Oldest first; ties break by path so collection order is stable.
        entries.sort_by(|a, b| {
            a.touched_us
                .cmp(&b.touched_us)
                .then_with(|| a.path.cmp(&b.path))
        });
        for e in &entries {
            if stats.bytes_after <= max_bytes {
                break;
            }
            if fs::remove_file(&e.path).is_ok() {
                let _ = fs::remove_file(e.path.with_extension("touch"));
                stats.bytes_after -= e.bytes;
                stats.evicted += 1;
            }
        }
        Ok(stats)
    }
}

/// What one [`Store::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entries scanned.
    pub entries: usize,
    /// `.art` bytes before collection.
    pub bytes_before: u64,
    /// `.art` bytes after collection.
    pub bytes_after: u64,
    /// Entries evicted.
    pub evicted: usize,
}

fn render_entry(key: &str, payload: &str) -> String {
    debug_assert!(!key.contains('\n'), "keys are single-line");
    format!(
        "{MAGIC} {VERSION} {} {:016x}\n{key}\n{payload}",
        payload.len(),
        fnv64(payload.as_bytes(), 0)
    )
}

/// Validate and extract the payload; `None` means quarantine.
fn parse_entry(raw: &[u8], expect_key: &str) -> Option<String> {
    let text = std::str::from_utf8(raw).ok()?;
    let (header, rest) = text.split_once('\n')?;
    let (key, payload) = rest.split_once('\n')?;
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return None;
    }
    if fields.next()?.parse::<u32>().ok()? != VERSION {
        return None;
    }
    let len: usize = fields.next()?.parse().ok()?;
    let sum = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() || key != expect_key {
        return None;
    }
    if payload.len() != len || fnv64(payload.as_bytes(), 0) != sum {
        return None;
    }
    Some(payload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "turnpike-store-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_bytes() {
        let root = scratch("roundtrip");
        let s = Store::open(&root);
        assert_eq!(s.get("k1"), Lookup::Miss);
        s.put("k1", "{\"cycles\":42}").unwrap();
        assert_eq!(s.get("k1"), Lookup::Hit("{\"cycles\":42}".into()));
        // Distinct keys do not alias.
        assert_eq!(s.get("k2"), Lookup::Miss);
        // Overwrite wins.
        s.put("k1", "{\"cycles\":43}").unwrap();
        assert_eq!(s.get("k1"), Lookup::Hit("{\"cycles\":43}".into()));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let root = scratch("parents").join("deeply/nested/store");
        let s = Store::open(&root);
        s.put("key with spaces | and pipes", "payload").unwrap();
        assert_eq!(
            s.get("key with spaces | and pipes"),
            Lookup::Hit("payload".into())
        );
        fs::remove_dir_all(root.parent().unwrap().parent().unwrap()).unwrap();
    }

    #[test]
    fn survives_reopen_cross_process_shape() {
        let root = scratch("reopen");
        Store::open(&root).put("k", "v").unwrap();
        // A fresh handle (different "process") sees the entry.
        assert_eq!(Store::open(&root).get("k"), Lookup::Hit("v".into()));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_entries_quarantine_instead_of_serving() {
        let root = scratch("corrupt");
        let s = Store::open(&root);
        s.put("k", "payload-bytes").unwrap();
        // Flip payload bytes on disk (checksum mismatch).
        let path = s.entry_path(&key_hash("k"));
        let mut raw = fs::read_to_string(&path).unwrap();
        raw = raw.replace("payload-bytes", "tampered-byte");
        fs::write(&path, raw).unwrap();
        assert_eq!(s.get("k"), Lookup::Quarantined);
        assert_eq!(s.quarantined_count(), 1);
        // Quarantine is sticky: the entry is gone, next lookup is a miss...
        assert_eq!(s.get("k"), Lookup::Miss);
        // ...and a fresh put repopulates.
        s.put("k", "payload-bytes").unwrap();
        assert_eq!(s.get("k"), Lookup::Hit("payload-bytes".into()));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_and_wrong_version_entries_quarantine() {
        let root = scratch("versions");
        let s = Store::open(&root);
        s.put("k", "0123456789").unwrap();
        let path = s.entry_path(&key_hash("k"));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(s.get("k"), Lookup::Quarantined, "truncated entry");
        s.put("k", "0123456789").unwrap();
        let v2 = String::from_utf8(full)
            .unwrap()
            .replacen("turnpike-art 1 ", "turnpike-art 2 ", 1);
        fs::write(&path, v2).unwrap();
        assert_eq!(s.get("k"), Lookup::Quarantined, "future version");
        assert_eq!(s.quarantined_count(), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hash_collision_on_key_line_is_detected() {
        // Force a "collision" by writing an entry whose key line differs
        // from the lookup key but lives at the same path.
        let root = scratch("collide");
        let s = Store::open(&root);
        let hash = key_hash("key-a");
        let path = s.entry_path(&hash);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, render_entry("key-b", "other")).unwrap();
        // Lookup of key-a finds key-b's entry → quarantined, not served.
        assert_eq!(s.get("key-a"), Lookup::Quarantined);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_puts_of_the_same_key_all_succeed() {
        let root = scratch("race");
        let s = Store::open(&root);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        s.put("hot-key", "same deterministic payload").unwrap();
                    }
                });
            }
        });
        assert_eq!(
            s.get("hot-key"),
            Lookup::Hit("same deterministic payload".into())
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn multiline_payloads_round_trip() {
        let root = scratch("multiline");
        let s = Store::open(&root);
        let payload = "line one\nline two\n";
        s.put("k", payload).unwrap();
        assert_eq!(s.get("k"), Lookup::Hit(payload.into()));
        fs::remove_dir_all(&root).unwrap();
    }

    /// Fabricate a recency history by writing sidecars directly (their
    /// content is the LRU clock — no real time needed).
    fn set_touch(s: &Store, key: &str, when_us: u128) {
        let side = s.entry_path(&key_hash(key)).with_extension("touch");
        fs::write(side, format!("{when_us}")).unwrap();
    }

    #[test]
    fn gc_evicts_least_recently_used_until_under_budget() {
        let root = scratch("gc-lru");
        let s = Store::open(&root);
        let payload = "x".repeat(100);
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            s.put(key, &payload).unwrap();
            set_touch(&s, key, 1_000 + i as u128); // a oldest … d newest
        }
        let entry_bytes = fs::metadata(s.entry_path(&key_hash("a"))).unwrap().len();
        let total = entry_bytes * 4;

        // Budget for two entries: the two oldest (a, b) go.
        let stats = s.gc(entry_bytes * 2).unwrap();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.bytes_before, total);
        assert_eq!(stats.evicted, 2);
        assert!(stats.bytes_after <= entry_bytes * 2);
        assert_eq!(s.get("a"), Lookup::Miss);
        assert_eq!(s.get("b"), Lookup::Miss);
        assert_eq!(s.get("c"), Lookup::Hit(payload.clone()));
        assert_eq!(s.get("d"), Lookup::Hit(payload.clone()));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_under_budget_is_a_no_op_and_hits_refresh_recency() {
        let root = scratch("gc-touch");
        let s = Store::open(&root);
        s.put("cold", "1234567890").unwrap();
        s.put("hot", "0987654321").unwrap();
        set_touch(&s, "cold", 10);
        set_touch(&s, "hot", 20);

        let stats = s.gc(u64::MAX).unwrap();
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.bytes_after, stats.bytes_before);

        // A hit on `cold` refreshes its sidecar past the fabricated epoch,
        // flipping the eviction order.
        assert!(matches!(s.get("cold"), Lookup::Hit(_)));
        // Budget fits exactly the survivor (entry sizes differ by key
        // length, so measure the one that should remain).
        let budget = fs::metadata(s.entry_path(&key_hash("cold"))).unwrap().len();
        let stats = s.gc(budget).unwrap();
        assert_eq!(stats.evicted, 1);
        assert!(
            matches!(s.get("cold"), Lookup::Hit(_)),
            "recently used survives"
        );
        assert_eq!(s.get("hot"), Lookup::Miss, "stale entry evicted");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_never_touches_quarantine_and_handles_missing_sidecars() {
        let root = scratch("gc-quarantine");
        let s = Store::open(&root);
        s.put("good", "payload").unwrap();
        s.put("bad", "payload").unwrap();
        // Corrupt `bad` and trip quarantine.
        let bad_path = s.entry_path(&key_hash("bad"));
        fs::write(&bad_path, "garbage").unwrap();
        assert_eq!(s.get("bad"), Lookup::Quarantined);
        assert_eq!(s.quarantined_count(), 1);
        // Strip `good`'s sidecar: legacy entries still collect (oldest
        // first) rather than erroring.
        fs::remove_file(s.entry_path(&key_hash("good")).with_extension("touch")).unwrap();

        let stats = s.gc(0).unwrap();
        assert_eq!(stats.evicted, 1, "only the live entry is collectable");
        assert_eq!(s.quarantined_count(), 1, "evidence survives GC");
        fs::remove_dir_all(&root).unwrap();
    }
}
