//! Pass-by-pass snapshots: compile while recording the IR after every
//! pipeline stage. Powers debugging sessions and the `compiler_pipeline`
//! example; not used on the hot path.
//!
//! Implemented as a [`PassObserver`] on the regular
//! [`crate::pass::PassManager`] pipeline — snapshotting is a listener on
//! the one true pass list, not a second copy of it.

use std::cell::RefCell;
use std::rc::Rc;

use crate::config::CompilerConfig;
use crate::pass::{Pass, PassManager, PassObserver, PassRecord};
use crate::pipeline::{CompileError, CompileOutput};
use turnpike_ir::Program;

/// The IR text after one pipeline stage.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Stage name (`"legalize"`, `"regalloc"`, ...).
    pub stage: &'static str,
    /// Pretty-printed function after the stage.
    pub ir: String,
    /// Checkpoint count after the stage.
    pub ckpts: usize,
    /// Boundary count after the stage.
    pub boundaries: usize,
}

/// A [`PassObserver`] that records a [`Snapshot`] after every transforming
/// pass (analysis passes leave the IR untouched and are skipped).
///
/// The snapshot list is shared through an `Rc<RefCell<...>>` so the caller
/// can keep a handle while the observer is owned by the manager.
pub struct SnapshotObserver {
    snaps: Rc<RefCell<Vec<Snapshot>>>,
}

impl SnapshotObserver {
    /// A fresh observer plus the shared handle to its snapshot list.
    pub fn new() -> (Self, Rc<RefCell<Vec<Snapshot>>>) {
        let snaps = Rc::new(RefCell::new(Vec::new()));
        (
            SnapshotObserver {
                snaps: Rc::clone(&snaps),
            },
            snaps,
        )
    }
}

impl PassObserver for SnapshotObserver {
    fn after_pass(&mut self, pass: &dyn Pass, prog: &Program, _record: &PassRecord) {
        if pass.is_analysis() {
            return;
        }
        let f = &prog.func;
        self.snaps.borrow_mut().push(Snapshot {
            stage: pass.name(),
            ir: f.to_string(),
            ckpts: f.ckpt_count(),
            boundaries: f.boundary_count(),
        });
    }
}

/// Compile like [`crate::compile`] but record a [`Snapshot`] after each
/// stage that ran.
///
/// # Errors
///
/// Same failure modes as [`crate::compile`].
pub fn compile_with_snapshots(
    program: &Program,
    config: &CompilerConfig,
) -> Result<(CompileOutput, Vec<Snapshot>), CompileError> {
    let (observer, snaps) = SnapshotObserver::new();
    let out = PassManager::for_config(config)
        .with_observer(Box::new(observer))
        .run(program)?;
    let snaps = Rc::try_unwrap(snaps)
        .expect("manager dropped its observer")
        .into_inner();
    Ok((out, snaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnpike_ir::{DataSegment, FunctionBuilder, Operand};

    fn sample() -> Program {
        let mut b = FunctionBuilder::new("snap");
        let x = b.fresh_reg();
        let c = b.fresh_reg();
        let body = b.create_block();
        let done = b.create_block();
        b.mov(x, 0i64);
        b.jump(body);
        b.switch_to(body);
        b.store_abs(x, 0x1000);
        b.add(x, x, 1i64);
        b.cmp_lt(c, x, 8i64);
        b.branch(c, body, done);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(x)));
        Program::new(b.finish().unwrap(), DataSegment::zeroed(0x1000, 1))
    }

    #[test]
    fn snapshots_cover_enabled_stages() {
        let p = sample();
        let (_, snaps) = compile_with_snapshots(&p, &CompilerConfig::turnpike(4)).unwrap();
        let stages: Vec<&str> = snaps.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                "legalize",
                "livm+dce",
                "regalloc",
                "partition",
                "checkpoint",
                "prune",
                "licm",
                "sched"
            ]
        );
        // Checkpoints appear at the checkpoint stage.
        let idx = stages.iter().position(|s| *s == "checkpoint").unwrap();
        assert!(snaps[idx].ckpts > 0);
        assert!(snaps[idx].boundaries > 0);
        assert!(snaps[idx].ir.contains("ckpt"));
        // Earlier stages have none.
        assert_eq!(snaps[0].ckpts, 0);
    }

    #[test]
    fn disabled_stages_leave_no_snapshot() {
        let p = sample();
        let (_, snaps) = compile_with_snapshots(&p, &CompilerConfig::turnstile(4)).unwrap();
        let stages: Vec<&str> = snaps.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec!["legalize", "regalloc", "partition", "checkpoint"]
        );
    }

    #[test]
    fn snapshot_compile_agrees_with_plain_compile() {
        let p = sample();
        let plain = crate::compile(&p, &CompilerConfig::turnpike(4)).unwrap();
        let (snapped, _) = compile_with_snapshots(&p, &CompilerConfig::turnpike(4)).unwrap();
        assert_eq!(plain.program, snapped.program);
        assert_eq!(plain.stats, snapped.stats);
        assert_eq!(plain.metrics, snapped.metrics);
    }
}
