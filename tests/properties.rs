//! Property-based tests over randomly generated programs: the entire
//! compile-and-simulate stack must preserve the interpreter's semantics for
//! any well-formed input, under any optimization combination, and the
//! partitioner's store-budget invariant must hold.

use proptest::prelude::*;
use std::collections::BTreeMap;
use turnpike::compiler::{compile, CompilerConfig, SPILL_BASE};
use turnpike::ir::{interp, BinOp, CmpOp, DataSegment, FunctionBuilder, Operand, Program, Reg};
use turnpike::resilience::{run_kernel, RunSpec, Scheme};
use turnpike::sim::{Core, SimConfig};

const DATA: u64 = 0x1_0000;
const CELLS: i64 = 16;

/// One random straight-line-with-one-loop program from a script of ops.
#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8, u8, i8),
    Cmp(u8, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    Mov(u8, i8),
}

fn build(script: &[Op], trip: u8) -> Program {
    let mut b = FunctionBuilder::new("prop");
    let base = b.param();
    let regs: Vec<Reg> = (0..6).map(|_| b.fresh_reg()).collect();
    let i = b.fresh_reg();
    let c = b.fresh_reg();
    let t = b.fresh_reg();
    let body = b.create_block();
    let done = b.create_block();
    for (k, &r) in regs.iter().enumerate() {
        b.mov(r, k as i64 + 1);
    }
    b.mov(i, 0i64);
    b.jump(body);
    b.switch_to(body);
    let binops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Xor, BinOp::And];
    let cmpops = [CmpOp::Lt, CmpOp::Eq, CmpOp::Gt];
    for op in script {
        match *op {
            Op::Alu(o, d, s, imm) => {
                let bo = binops[o as usize % binops.len()];
                let d = regs[d as usize % regs.len()];
                let s = regs[s as usize % regs.len()];
                if imm % 2 == 0 {
                    b.bin(bo, d, d, Operand::Reg(s));
                } else {
                    b.bin(bo, d, s, imm as i64);
                }
            }
            Op::Cmp(o, d, s) => {
                let co = cmpops[o as usize % cmpops.len()];
                let d = regs[d as usize % regs.len()];
                let s = regs[s as usize % regs.len()];
                b.cmp(co, d, s, 3i64);
            }
            Op::Load(d, cell) => {
                let d = regs[d as usize % regs.len()];
                let off = (cell as i64 % CELLS) * 8;
                b.bin(BinOp::Add, t, base, off);
                b.load(d, t, 0);
            }
            Op::Store(s, cell) => {
                let s = regs[s as usize % regs.len()];
                let off = (cell as i64 % CELLS) * 8;
                b.bin(BinOp::Add, t, base, off);
                b.store(s, t, 0);
            }
            Op::Mov(d, v) => {
                let d = regs[d as usize % regs.len()];
                b.mov(d, v as i64);
            }
        }
    }
    b.add(i, i, 1i64);
    b.cmp(CmpOp::Lt, c, i, (trip % 12 + 2) as i64);
    b.branch(c, body, done);
    b.switch_to(done);
    let acc = regs[0];
    for &r in &regs[1..] {
        b.add(acc, acc, r);
    }
    b.ret(Some(Operand::Reg(acc)));
    Program::with_params(
        b.finish().expect("generated programs are well-formed"),
        DataSegment::zeroed(DATA, CELLS as usize),
        vec![DATA as i64],
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i8>())
            .prop_map(|(o, d, s, i)| Op::Alu(o, d, s, i)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, d, s)| Op::Cmp(o, d, s)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, c)| Op::Load(d, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, c)| Op::Store(s, c)),
        (any::<u8>(), any::<i8>()).prop_map(|(d, v)| Op::Mov(d, v)),
    ]
}

fn data_only(mem: &BTreeMap<u64, i64>) -> BTreeMap<u64, i64> {
    mem.iter()
        .filter(|(a, _)| **a < SPILL_BASE)
        .map(|(a, v)| (*a, *v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random program, compiled under any optimization mix, simulated on
    /// the resilient core, matches the reference interpreter.
    #[test]
    fn compile_simulate_equals_interpret(
        script in prop::collection::vec(op_strategy(), 1..24),
        trip in any::<u8>(),
        bits in 0u32..32,
    ) {
        let program = build(&script, trip);
        let golden = interp::golden(&program).expect("interprets");
        let config = CompilerConfig {
            resilient: true,
            sb_size: 4,
            livm: bits & 1 != 0,
            prune: bits & 2 != 0,
            licm: bits & 4 != 0,
            sched: bits & 8 != 0,
            store_aware_ra: bits & 16 != 0,
            policy: turnpike::compiler::ProtectionPolicy::Uniform,
        };
        let out = compile(&program, &config).expect("compiles");
        let sim = Core::new(&out.program, SimConfig::turnpike(4, 10))
            .run()
            .expect("simulates");
        prop_assert_eq!(sim.ret, golden.0);
        prop_assert_eq!(data_only(&sim.memory), data_only(&golden.1));
    }

    /// The partitioner keeps every region within the store budget, for any
    /// program and SB size.
    #[test]
    fn region_budget_invariant(
        script in prop::collection::vec(op_strategy(), 1..32),
        trip in any::<u8>(),
        sb in 2u32..12,
    ) {
        let program = build(&script, trip);
        let out = compile(&program, &CompilerConfig::turnstile(sb));
        // Compilation may legitimately fail only via RegionOverflow —
        // and the pipeline must never emit a program beyond the SB bound.
        if let Ok(out) = out {
            // Count the max stores between boundaries along the flat
            // instruction stream (a conservative dynamic-path check for the
            // generated single-loop shape).
            let mut run = 0u32;
            let mut max = 0u32;
            for inst in &out.program.insts {
                use turnpike::isa::MachInst;
                match inst {
                    MachInst::RegionBoundary { .. } => run = 0,
                    i if i.is_store() => {
                        run += 1;
                        max = max.max(run);
                    }
                    _ => {}
                }
            }
            prop_assert!(max <= sb, "straight-line run of {max} stores > SB {sb}");
        }
    }

    /// Turnpike run with a single injected parity fault always recovers to
    /// the fault-free result.
    #[test]
    fn single_fault_never_corrupts(
        script in prop::collection::vec(op_strategy(), 4..20),
        trip in any::<u8>(),
        strike in 1u64..400,
        reg in 0u8..32,
        bit in 0u8..64,
    ) {
        let program = build(&script, trip);
        let spec = RunSpec::new(Scheme::Turnpike);
        let golden = run_kernel(&program, &spec).expect("fault-free run");
        let plan = turnpike::sim::FaultPlan::new(vec![turnpike::sim::Fault {
            strike_cycle: strike % golden.outcome.stats.cycles.max(2),
            detect_latency: 1 + strike % 10,
            kind: turnpike::sim::FaultKind::RegisterParity { reg, bit },
        }]);
        let run = turnpike::resilience::driver::run_kernel_with_faults(&program, &spec, &plan)
            .expect("faulted run completes");
        prop_assert_eq!(run.outcome.ret, golden.outcome.ret);
        prop_assert_eq!(run.outcome.memory, golden.outcome.memory);
    }
}
